"""Tests for the closed-loop client driver and cluster injection mode."""

import pytest

from repro.core import SimulationParams, mine_components
from repro.logs import Request, SiteSpec, TrafficSpec, build_site, synthetic_workload
from repro.policies import LARDPolicy, PRORDPolicy, WRRPolicy, ReplicationEngine
from repro.sim import ClosedLoopDriver, ClusterSimulator, run_closed_loop


@pytest.fixture(scope="module")
def small_site():
    return build_site(SiteSpec(categories=("x", "y"), pages_per_category=20,
                               seed=9))


def fast_spec():
    return TrafficSpec(think_time_mean=0.05, mean_session_pages=3,
                       max_session_pages=6, embedded_gap=0.005)


class TestInjectionMode:
    def test_requires_catalog_and_window(self):
        with pytest.raises(ValueError, match="catalog"):
            ClusterSimulator(None, WRRPolicy(),
                             SimulationParams(n_backends=1),
                             window_s=1.0)
        with pytest.raises(ValueError, match="window_s"):
            ClusterSimulator(None, WRRPolicy(),
                             SimulationParams(n_backends=1),
                             catalog={"/a": 100})

    def test_run_rejected_in_injection_mode(self):
        c = ClusterSimulator(None, WRRPolicy(),
                             SimulationParams(n_backends=1),
                             catalog={"/a": 100}, window_s=1.0)
        with pytest.raises(RuntimeError, match="injection-mode"):
            c.run()

    def test_inject_with_callback(self):
        c = ClusterSimulator(None, WRRPolicy(),
                             SimulationParams(n_backends=2,
                                              cache_bytes=1 << 20),
                             catalog={"/a": 1024}, window_s=1.0)
        done = []
        c.inject(Request(arrival=0.0, conn_id=0, path="/a", size=1024),
                 on_complete=lambda sid, hit: done.append((sid, hit)))
        c.sim.run()
        assert done == [(0, False)]
        assert c.metrics.completed == 1

    def test_explicit_connection_close(self):
        policy = WRRPolicy()
        c = ClusterSimulator(None, policy,
                             SimulationParams(n_backends=2,
                                              cache_bytes=1 << 20),
                             catalog={"/a": 1024}, window_s=1.0)
        c.inject(Request(arrival=0.0, conn_id=0, path="/a", size=1024))
        c.sim.run()
        # Connection not closed yet: WRR still remembers it.
        assert 0 in policy._conn_server
        c.close_connection(0)
        assert 0 not in policy._conn_server

    def test_inject_same_request_object_twice(self):
        # Regression: completion callbacks used to be keyed by id(req),
        # so injecting the same Request object twice (or an object whose
        # id was recycled) overwrote the first callback.  Both callbacks
        # must fire, each exactly once.
        c = ClusterSimulator(None, WRRPolicy(),
                             SimulationParams(n_backends=2,
                                              cache_bytes=1 << 20),
                             catalog={"/a": 1024}, window_s=1.0)
        req = Request(arrival=0.0, conn_id=0, path="/a", size=1024)
        done = []
        c.inject(req, on_complete=lambda sid, hit: done.append("first"))
        c.inject(req, on_complete=lambda sid, hit: done.append("second"))
        c.sim.run()
        assert sorted(done) == ["first", "second"]
        assert c.metrics.completed == 2

    def test_close_before_completion_defers(self):
        policy = WRRPolicy()
        c = ClusterSimulator(None, policy,
                             SimulationParams(n_backends=1,
                                              cache_bytes=1 << 20),
                             catalog={"/a": 1024}, window_s=1.0)
        c.inject(Request(arrival=0.0, conn_id=0, path="/a", size=1024))
        c.close_connection(0)      # still in flight
        assert 0 in policy._conn_server
        c.sim.run()
        assert 0 not in policy._conn_server


class TestClosedLoopDriver:
    def test_validation(self, small_site):
        with pytest.raises(ValueError):
            ClosedLoopDriver(small_site, WRRPolicy(), concurrency=0)
        with pytest.raises(ValueError):
            ClosedLoopDriver(small_site, WRRPolicy(), duration_s=0)

    def test_runs_once(self, small_site):
        d = ClosedLoopDriver(small_site, WRRPolicy(),
                             SimulationParams(n_backends=2,
                                              cache_bytes=1 << 20),
                             concurrency=4, duration_s=0.5,
                             spec=fast_spec())
        d.run()
        with pytest.raises(RuntimeError):
            d.run()

    def test_deterministic(self, small_site):
        def once():
            return run_closed_loop(
                small_site, LARDPolicy(),
                SimulationParams(n_backends=2, cache_bytes=1 << 20),
                concurrency=8, duration_s=1.0, spec=fast_spec(), seed=5)
        assert once().report == once().report

    def test_sessions_replaced_within_window(self, small_site):
        d = ClosedLoopDriver(small_site, WRRPolicy(),
                             SimulationParams(n_backends=2,
                                              cache_bytes=1 << 20),
                             concurrency=6, duration_s=2.0,
                             spec=fast_spec())
        d.run()
        # With ~0.2 s sessions over 2 s, far more sessions than the
        # initial population must have completed.
        assert d.sessions_completed > 12
        assert d.page_views >= d.sessions_completed

    def test_system_drains_completely(self, small_site):
        d = ClosedLoopDriver(small_site, LARDPolicy(),
                             SimulationParams(n_backends=2,
                                              cache_bytes=1 << 20),
                             concurrency=10, duration_s=1.0,
                             spec=fast_spec())
        d.run()
        assert d.cluster.sim.pending_events == 0
        assert all(s.active == 0 for s in d.cluster.servers)

    def test_throughput_saturates_with_concurrency(self, small_site):
        params = SimulationParams(n_backends=2, cache_bytes=1 << 20)
        low = run_closed_loop(small_site, LARDPolicy(), params,
                              concurrency=2, duration_s=1.5,
                              spec=fast_spec())
        high = run_closed_loop(small_site, LARDPolicy(), params,
                               concurrency=64, duration_s=1.5,
                               spec=fast_spec())
        assert high.throughput_rps > 2 * low.throughput_rps
        assert high.mean_response_s >= low.mean_response_s

    def test_prord_with_replication(self):
        w = synthetic_workload(scale=0.03)
        params = SimulationParams(
            n_backends=4,
            cache_bytes=int(0.3 * w.site_bytes / 4),
            replication_interval_s=0.5,
        )
        mining = mine_components(w, params)
        policy = PRORDPolicy(mining.components)
        replicator = ReplicationEngine()
        result = run_closed_loop(
            w.site, policy, params,
            concurrency=32, duration_s=2.0, spec=fast_spec(),
            replicator=replicator,
        )
        assert result.report.completed > 500
        assert replicator.rounds >= 2
        assert result.report.prefetches_issued > 0

    def test_dynamic_pages_served(self):
        site = build_site(SiteSpec(categories=("a",), pages_per_category=20,
                                   dynamic_fraction=0.5, seed=3))
        d = ClosedLoopDriver(site, WRRPolicy(),
                             SimulationParams(n_backends=2,
                                              cache_bytes=1 << 20),
                             concurrency=8, duration_s=1.0,
                             spec=fast_spec())
        d.run()
        assert sum(s.dynamic_served for s in d.cluster.servers) > 0
