"""Runtime prefetch selection — Algorithm 2 (``get_prefetch_page``).

For every incoming request the predictor

1. updates the per-connection access sequence and the online hit
   statistics of the matched candidate path,
2. asks the dependency graph for the most likely next page given the
   sequence, and
3. returns a prefetch decision when that page's confidence — the
   paper's ``picked_value / Accessed_Num[requested_page]`` ratio —
   exceeds the threshold.

The predictor also keeps accuracy bookkeeping (did the predicted page
actually arrive next on the same connection?) used by the evaluation
benches.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque

from .depgraph import DependencyGraph, Prediction

__all__ = ["PrefetchDecision", "PrefetchStats", "PrefetchPredictor"]


@dataclass(frozen=True, slots=True)
class PrefetchDecision:
    """What to prefetch, and why."""

    page: str
    confidence: float
    context: tuple[str, ...]


@dataclass(slots=True)
class PrefetchStats:
    """Prediction bookkeeping (for reporting and benches)."""

    observed: int = 0
    predictions: int = 0
    correct: int = 0
    wasted: int = 0

    @property
    def accuracy(self) -> float:
        """Fraction of issued predictions whose page arrived next."""
        settled = self.correct + self.wasted
        return self.correct / settled if settled else 0.0

    @property
    def coverage(self) -> float:
        """Fraction of observed requests that triggered a prediction."""
        return self.predictions / self.observed if self.observed else 0.0


class PrefetchPredictor:
    """Per-connection next-page prediction over a dependency graph.

    Parameters
    ----------
    graph:
        A trained navigation model — the paper's
        :class:`DependencyGraph`, or any object with the same
        ``order``/``predict``/``record_transition`` surface (e.g.
        :class:`~repro.mining.ppm.PPMPredictor`).
    threshold:
        Minimum confidence for issuing a prefetch (Algorithm 2's
        ``Threshold``).
    online_update:
        When True, observed transitions are folded back into the graph —
        the paper's dynamic complement to offline mining.
    top_k:
        How many above-threshold successors :meth:`observe_many` emits
        per page view (the paper prefetches one; aggressive deployments
        prefetch the top few).
    """

    def __init__(
        self,
        graph: DependencyGraph,
        *,
        threshold: float = 0.35,
        online_update: bool = True,
        top_k: int = 1,
    ) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must be in [0, 1]")
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        self.graph = graph
        self.threshold = threshold
        self.online_update = online_update
        self.top_k = top_k
        self._sequences: dict[int, Deque[str]] = {}
        self._pending: dict[int, set[str]] = {}
        # Duck-typed predictors (PPM) expose only the normalised
        # ``candidates`` surface; the raw-counts fast path is optional.
        self._candidate_counts = getattr(graph, "candidate_counts", None)
        self.stats = PrefetchStats()

    def observe(self, conn_id: int, page: str) -> PrefetchDecision | None:
        """Register a main-page request; maybe return a prefetch decision.

        Embedded-object requests must not be passed here — bundles are
        handled by :class:`~repro.mining.bundles.BundleTable`; this
        predictor models page-to-page navigation only.
        """
        decisions = self.observe_many(conn_id, page, k=1)
        return decisions[0] if decisions else None

    def observe_many(
        self, conn_id: int, page: str, k: int | None = None
    ) -> list[PrefetchDecision]:
        """Like :meth:`observe`, emitting up to ``k`` (default
        ``top_k``) above-threshold successors, most confident first."""
        k = self.top_k if k is None else k
        if k < 1:
            raise ValueError("k must be >= 1")
        self.stats.observed += 1
        seq = self._sequences.get(conn_id)
        if seq is None:
            seq = deque(maxlen=self.graph.order)
            self._sequences[conn_id] = seq

        # Settle the previous page view's predictions.
        pending = self._pending.pop(conn_id, None)
        if pending:
            if page in pending:
                self.stats.correct += 1
                self.stats.wasted += len(pending) - 1
            else:
                self.stats.wasted += len(pending)

        if seq and self.online_update:
            self.graph.record_transition(seq[-1], page)
        seq.append(page)

        threshold = self.threshold
        if self._candidate_counts is not None:
            counter, total, _ = self._candidate_counts(seq)
            if counter is None:
                return []
            # ``n / total`` here is the same division candidates()
            # performs when normalising, so the confidences are
            # bit-identical — this just skips building the full mapping
            # for entries the threshold drops anyway.
            picked = sorted(
                ((n / total, p) for p, n in counter.items()
                 if p != page and n / total > threshold),
                key=lambda e: (-e[0], e[1]),
            )[:k]
        else:
            scores, _ = self.graph.candidates(seq)
            picked = sorted(
                ((conf, p) for p, conf in scores.items()
                 if p != page and conf > threshold),
                key=lambda e: (-e[0], e[1]),
            )[:k]
        if not picked:
            return []
        self.stats.predictions += len(picked)
        self._pending[conn_id] = {p for _, p in picked}
        context = tuple(seq)
        return [
            PrefetchDecision(page=p, confidence=conf, context=context)
            for conf, p in picked
        ]

    def close(self, conn_id: int) -> None:
        """Drop per-connection state when the connection ends.

        Unsettled predictions on a closing connection count as wasted
        work — the prefetched pages were never requested.
        """
        self._sequences.pop(conn_id, None)
        pending = self._pending.pop(conn_id, None)
        if pending:
            self.stats.wasted += len(pending)

    @property
    def open_connections(self) -> int:
        return len(self._sequences)
