"""Tests for the power-management extension."""

import pytest

from repro.core import SimulationParams
from repro.logs import Request, Trace
from repro.policies import WRRPolicy
from repro.sim import ClusterSimulator


def burst_then_idle_trace():
    """A burst of requests, then a long idle gap, then one request."""
    reqs = [Request(arrival=i * 0.001, conn_id=i, path="/a", size=1024)
            for i in range(10)]
    reqs.append(Request(arrival=60.0, conn_id=99, path="/a", size=1024))
    return Trace(reqs, name="burst")


class TestPowerOff:
    def test_no_management_no_wakeups(self):
        p = SimulationParams(n_backends=2, cache_bytes=1 << 20,
                             power_management=False)
        result = ClusterSimulator(burst_then_idle_trace(), WRRPolicy(), p,
                                  warmup_fraction=0.0).run()
        assert result.power.wakeups == 0
        assert result.power.hibernating_seconds == 0.0
        # Energy = full power for the whole run on both servers.
        assert result.power.mean_power == pytest.approx(1.0)


class TestPowerOn:
    def make(self):
        p = SimulationParams(
            n_backends=2, cache_bytes=1 << 20,
            power_management=True,
            hibernate_after_s=1.0, wakeup_latency_s=0.5,
        )
        return ClusterSimulator(burst_then_idle_trace(), WRRPolicy(), p,
                                warmup_fraction=0.0).run()

    def test_idle_servers_hibernate(self):
        result = self.make()
        assert result.power.hibernating_seconds > 50.0
        assert result.power.mean_power < 0.5

    def test_wakeup_counted(self):
        result = self.make()
        assert result.power.wakeups >= 1

    def test_wakeup_latency_hits_response_time(self):
        p_on = SimulationParams(n_backends=2, cache_bytes=1 << 20,
                                power_management=True,
                                hibernate_after_s=1.0,
                                wakeup_latency_s=0.5)
        p_off = SimulationParams(n_backends=2, cache_bytes=1 << 20,
                                 power_management=False)
        c_on = ClusterSimulator(burst_then_idle_trace(), WRRPolicy(), p_on,
                                warmup_fraction=0.0)
        c_off = ClusterSimulator(burst_then_idle_trace(), WRRPolicy(),
                                 p_off, warmup_fraction=0.0)
        r_on, r_off = c_on.run(), c_off.run()
        late_on = max(x.response_time for x in c_on.metrics.records)
        late_off = max(x.response_time for x in c_off.metrics.records)
        assert late_on >= late_off + 0.45

    def test_energy_lower_with_management(self):
        p_on = SimulationParams(n_backends=2, cache_bytes=1 << 20,
                                power_management=True,
                                hibernate_after_s=1.0)
        p_off = SimulationParams(n_backends=2, cache_bytes=1 << 20)
        e_on = ClusterSimulator(burst_then_idle_trace(), WRRPolicy(),
                                p_on, warmup_fraction=0.0).run()
        e_off = ClusterSimulator(burst_then_idle_trace(), WRRPolicy(),
                                 p_off, warmup_fraction=0.0).run()
        assert e_on.power.energy_units < 0.3 * e_off.power.energy_units
