"""Pool-safety family: state that crosses ``--jobs`` must pickle.

Grid cells, mined models, telemetry mergers, and the bench children
all ship across a ``ProcessPoolExecutor`` boundary.  An instance that
captured a lambda, a local closure, an open file handle, a lock, or a
live generator pickles late (or not at all) and fails far from the
line that stored it.  These rules scan every class known to cross the
boundary — the built-in registry below plus any class carrying a
``# reprolint: pool-boundary`` marker comment — and flag the store.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from .core import Diagnostic, FileContext
from .registry import rule

__all__ = ["POOL_BOUNDARY_CLASSES"]

#: Classes known to cross the process-pool boundary today: the grid
#: runner's shipped context and results, the mined-model artifact, and
#: everything embedded in them.  New pool-crossing classes either get
#: added here or carry ``# reprolint: pool-boundary`` on their def line.
POOL_BOUNDARY_CLASSES = frozenset({
    "Cell",
    "CellResult",
    "_GridContext",
    "MinedModels",
    "SimulationResult",
    "SimulationParams",
    "SimulationReport",
    "Workload",
    "ExperimentScale",
    "Telemetry",
    "TelemetrySummary",
    "MergedTelemetry",
    "PhaseProfiler",
    "AuditSummary",
    "TraceEvent",
})

#: Callables whose result is an OS-level resource (unpicklable).
_RESOURCE_CALLS = frozenset({
    "open",
    "io.open",
    "gzip.open",
    "bz2.open",
    "lzma.open",
    "socket.socket",
    "tempfile.TemporaryFile",
    "tempfile.NamedTemporaryFile",
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
    "threading.Event",
    "threading.Semaphore",
    "threading.BoundedSemaphore",
    "multiprocessing.Lock",
    "multiprocessing.RLock",
})

#: Builtins returning one-shot iterators (pickle failures or — worse —
#: silently exhausted state on the far side).
_ITERATOR_CALLS = frozenset({
    "map", "filter", "zip", "iter", "enumerate", "reversed",
})

#: Calendar-scheduling methods (the engine's and the sharded engine's).
_SCHEDULE_CALLS = frozenset({
    "schedule", "schedule_at", "schedule_at_reserved",
})

#: Private calendar state of :class:`repro.sim.engine.Simulator` /
#: :class:`repro.sim.shard.ShardedSimulator`.  A scheduled closure that
#: reaches into these couples itself to one process's heap — exactly
#: the state a shard worker cannot share.
_ENGINE_PRIVATE_ATTRS = frozenset({
    "_heap", "_heaps", "_seq", "_high_water", "_pending",
    "_owner_shard", "_current_shard", "_events_processed",
})


def _pool_classes(ctx: FileContext) -> Iterator[ast.ClassDef]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if (
            node.name in POOL_BOUNDARY_CLASSES
            or node.lineno in ctx.pool_marker_lines
        ):
            yield node


def _instance_stores(
    cls: ast.ClassDef,
) -> Iterator[tuple[ast.AST, str, ast.expr, frozenset[str]]]:
    """(assignment node, target description, stored value, names of
    functions defined locally in the storing method) for every
    ``self.x = ...`` in a method and every class-body default."""
    no_locals: frozenset[str] = frozenset()
    for item in cls.body:
        if isinstance(item, ast.Assign):
            for target in item.targets:
                if isinstance(target, ast.Name):
                    yield item, f"{cls.name}.{target.id}", item.value, \
                        no_locals
        elif isinstance(item, ast.AnnAssign) and item.value is not None:
            if isinstance(item.target, ast.Name):
                yield item, f"{cls.name}.{item.target.id}", item.value, \
                    no_locals
        elif isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if not item.args.args:
                continue
            self_name = item.args.args[0].arg
            local_defs = frozenset(
                n.name
                for n in ast.walk(item)
                if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
                and n is not item
            )
            for node in ast.walk(item):
                value: ast.expr | None = None
                target_expr: ast.Attribute | None = None
                if isinstance(node, ast.Assign):
                    value = node.value
                    for t in node.targets:
                        if (
                            isinstance(t, ast.Attribute)
                            and isinstance(t.value, ast.Name)
                            and t.value.id == self_name
                        ):
                            target_expr = t
                elif isinstance(node, ast.AnnAssign) and node.value:
                    value = node.value
                    t = node.target
                    if (
                        isinstance(t, ast.Attribute)
                        and isinstance(t.value, ast.Name)
                        and t.value.id == self_name
                    ):
                        target_expr = t
                if value is not None and target_expr is not None:
                    yield node, f"self.{target_expr.attr}", value, local_defs


_BAD_CALLABLE = (
    "class Cell:\n"
    "    def __init__(self, policy):\n"
    "        self.make = lambda: policy()\n"
)

_GOOD_POOL = (
    "class Cell:\n"
    "    def __init__(self, policy_name):\n"
    "        self.policy_name = policy_name\n"
)


@rule(
    "pool-callable-state",
    "pools",
    "a pool-crossing class must not store lambdas or local closures in "
    "instance state; store names/specs and rebuild in the worker",
    bad_example=_BAD_CALLABLE,
    bad_lines=(3,),
    good_example=_GOOD_POOL,
)
def check_pool_callable_state(ctx: FileContext) -> Iterator[Diagnostic]:
    for cls in _pool_classes(ctx):
        for node, desc, value, local_defs in _instance_stores(cls):
            for sub in ast.walk(value):
                if isinstance(sub, ast.Lambda):
                    yield ctx.diagnostic(
                        node, "pool-callable-state",
                        f"{desc} stores a lambda; lambdas do not "
                        "pickle across the --jobs pool",
                    )
                elif isinstance(sub, ast.Name) and sub.id in local_defs:
                    yield ctx.diagnostic(
                        node, "pool-callable-state",
                        f"{desc} stores local closure {sub.id}(); "
                        "closures do not pickle across the --jobs pool",
                    )


@rule(
    "pool-resource-state",
    "pools",
    "a pool-crossing class must not hold open handles, sockets, or "
    "locks in instance state; store paths/specs and open in the worker",
    bad_example=(
        "class Cell:\n"
        "    def __init__(self, path):\n"
        "        self.fp = open(path)\n"
    ),
    bad_lines=(3,),
    good_example=_GOOD_POOL,
)
def check_pool_resource_state(ctx: FileContext) -> Iterator[Diagnostic]:
    for cls in _pool_classes(ctx):
        for node, desc, value, _locals in _instance_stores(cls):
            for sub in ast.walk(value):
                if not isinstance(sub, ast.Call):
                    continue
                name = ctx.canonical_call(sub)
                if name in _RESOURCE_CALLS:
                    yield ctx.diagnostic(
                        node, "pool-resource-state",
                        f"{desc} stores {name}(...); OS handles and "
                        "locks do not pickle across the --jobs pool",
                    )


@rule(
    "pool-generator-state",
    "pools",
    "a pool-crossing class must not hold generators or one-shot "
    "iterators in instance state; materialize (tuple/list) first",
    bad_example=(
        "class Cell:\n"
        "    def __init__(self, paths):\n"
        "        self.paths = (p for p in paths)\n"
    ),
    bad_lines=(3,),
    good_example=(
        "class Cell:\n"
        "    def __init__(self, paths):\n"
        "        self.paths = tuple(paths)\n"
    ),
)
def check_pool_generator_state(ctx: FileContext) -> Iterator[Diagnostic]:
    for cls in _pool_classes(ctx):
        for node, desc, value, _locals in _instance_stores(cls):
            offenders: list[str] = []
            if isinstance(value, ast.GeneratorExp):
                offenders.append("a generator expression")
            for sub in ast.walk(value):
                if sub is value:
                    continue
                if isinstance(sub, ast.GeneratorExp) and not isinstance(
                    ctx.parents.get(sub), ast.Call
                ):
                    # A generator fed straight into a call
                    # (tuple(x for ...)) is consumed, not stored.
                    offenders.append("a generator expression")
            if isinstance(value, ast.Call):
                name = ctx.canonical_call(value)
                if name in _ITERATOR_CALLS:
                    offenders.append(f"a one-shot {name}(...) iterator")
            for what in offenders:
                yield ctx.diagnostic(
                    node, "pool-generator-state",
                    f"{desc} stores {what}; it will not pickle (or "
                    "arrives exhausted) across the --jobs pool",
                )


def _scheduled_callbacks(
    scope: ast.AST,
) -> Iterator[tuple[ast.Call, str, ast.AST]]:
    """(schedule call, description, callback body) for every lambda or
    locally-defined closure handed to a calendar-scheduling method
    inside ``scope``."""
    local_defs = {
        n.name: n
        for n in ast.walk(scope)
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        and n is not scope
    }
    for call in ast.walk(scope):
        if not isinstance(call, ast.Call):
            continue
        func = call.func
        if not (isinstance(func, ast.Attribute)
                and func.attr in _SCHEDULE_CALLS):
            continue
        args = list(call.args) + [kw.value for kw in call.keywords]
        for arg in args:
            if isinstance(arg, ast.Lambda):
                yield call, "a lambda", arg
            elif isinstance(arg, ast.Name) and arg.id in local_defs:
                yield call, f"local closure {arg.id}()", local_defs[arg.id]


@rule(
    "pool-shard-closure",
    "pools",
    "a closure scheduled on the simulation calendar must not reach "
    "into private engine state (_heap/_heaps/_seq/...); it pins the "
    "callback to one shard's mutable heap and cannot ship to a worker",
    bad_example=(
        "class Worker:\n"
        "    def start(self, sim):\n"
        "        sim.schedule_at(0.0, lambda: sim._heap.clear())\n"
    ),
    bad_lines=(3,),
    good_example=(
        "class Worker:\n"
        "    def start(self, sim):\n"
        "        sim.schedule_at(0.0, self.tick)\n"
    ),
)
def check_pool_shard_closure(ctx: FileContext) -> Iterator[Diagnostic]:
    seen: set[int] = set()
    for scope in ast.walk(ctx.tree):
        if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for call, desc, body in _scheduled_callbacks(scope):
            if id(call) in seen:
                # Nested defs are walked as their own scope too; report
                # each schedule call once.
                continue
            seen.add(id(call))
            tainted = sorted({
                sub.attr
                for sub in ast.walk(body)
                if isinstance(sub, ast.Attribute)
                and sub.attr in _ENGINE_PRIVATE_ATTRS
            })
            if tainted:
                yield ctx.diagnostic(
                    call, "pool-shard-closure",
                    f"scheduled callback {desc} captures private engine "
                    f"state ({', '.join(tainted)}); a shard worker "
                    "cannot share another process's calendar",
                )
