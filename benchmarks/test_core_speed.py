"""Core-engine speed benchmark — emits and gates ``BENCH_core.json``.

Measures the simulation hot path (events/sec, best of 3) for WRR, LARD
and PRORD on the BENCH-scale synthetic workload, the calendar
high-water mark under the streaming arrival pump, and the mined-model
cache round trip.  The artifact is the baseline every future perf PR is
judged against: the gate fails when the machine-normalised aggregate
events/sec regresses more than ``BENCH_CORE_TOLERANCE`` (default 15%)
against the committed ``BENCH_core.json``.

Environment knobs:

* ``BENCH_CORE_JSON``      — fresh-artifact path (default: repo root)
* ``BENCH_CORE_BASELINE``  — committed baseline to gate against
  (default: ``BENCH_core.json`` at the repo root, so CI can redirect
  the fresh artifact without losing the gate)
* ``BENCH_CORE_TOLERANCE`` — allowed fractional regression (default 0.15)
* ``BENCH_CORE_GATE``      — set to ``0`` to measure without gating

Raw events/sec is machine-dependent, so the gate compares *normalised*
throughput: events/sec divided by a pure-Python heap-churn calibration
score measured on the same machine at the same time.  That ratio is
stable across hosts to well within the tolerance; the raw numbers are
still recorded for humans.
"""

from __future__ import annotations

import dataclasses
import heapq
import json
import os
import time
from pathlib import Path

import pytest

from repro.core import SimulationParams
from repro.core.system import (
    MINING_POLICY_NAMES,
    build_policy,
    cache_bytes_for_fraction,
    mine_models,
)
from repro.experiments.common import loaded_workload
from repro.mining import cached_mine_models
from repro.obs.profiler import PhaseProfiler
from repro.sim.cluster import DEFAULT_ARRIVAL_WINDOW, ClusterSimulator

from conftest import BENCH

BENCH_CORE_SCHEMA = "prord-bench-core/v2"
#: Older artifacts the gate can still read (see _baseline_normalized).
BENCH_CORE_SCHEMA_V1 = "prord-bench-core/v1"
POLICIES = ("wrr", "lard", "prord")
ROUNDS = 3
#: Shard count for the v2 ``sharded`` row.
SHARDED_K = 4

_REPO_ROOT = Path(__file__).resolve().parent.parent
ARTIFACT = Path(os.environ.get("BENCH_CORE_JSON",
                               _REPO_ROOT / "BENCH_core.json"))
BASELINE = Path(os.environ.get("BENCH_CORE_BASELINE",
                               _REPO_ROOT / "BENCH_core.json"))
TOLERANCE = float(os.environ.get("BENCH_CORE_TOLERANCE", "0.15"))
GATE = os.environ.get("BENCH_CORE_GATE", "1") != "0"


def _calibration_score() -> float:
    """Machine-speed proxy: heap-churn ops/sec (best of 3).

    The same primitive mix the engine's hot loop stresses — heappush,
    heappop, tuple compares — so dividing events/sec by this score
    cancels most cross-machine (and most interpreter-version) variance.
    """
    n = 200_000
    best = 0.0
    for _ in range(3):
        h: list[tuple[int, int]] = []
        t0 = time.perf_counter()
        for i in range(n):
            heapq.heappush(h, ((i * 16807) % 65536, i))
            if len(h) > 64:
                heapq.heappop(h)
        best = max(best, n / (time.perf_counter() - t0))
    return best


@pytest.fixture(scope="module")
def measurements():
    """Run the whole core benchmark once; tests assert over the result."""
    workload = loaded_workload("synthetic", BENCH)
    params = SimulationParams(n_backends=BENCH.n_backends).with_overrides(
        cache_bytes=cache_bytes_for_fraction(
            workload, BENCH.cache_fraction, BENCH.n_backends))

    profiler = PhaseProfiler()
    with profiler.phase("calibrate"):
        calibration = _calibration_score()

    models = mine_models(workload, params, profiler=profiler)

    policies: dict[str, dict] = {}
    reports: dict[str, dict] = {}
    for name in POLICIES:
        best = None
        for _ in range(ROUNDS):
            mining = (models.runtime(params)
                      if name in MINING_POLICY_NAMES else None)
            policy, replicator = build_policy(name, mining, params)
            cluster = ClusterSimulator(
                workload.trace, policy, params, replicator=replicator,
                warmup_fraction=BENCH.warmup_fraction,
                window_s=BENCH.duration_s)
            t0 = time.perf_counter()
            result = cluster.run()
            wall = time.perf_counter() - t0
            if best is None or wall < best["wall_s"]:
                best = {
                    "events": cluster.sim.events_processed,
                    "wall_s": wall,
                    "completed": result.report.completed,
                    "calendar_high_water": cluster.sim.calendar_high_water,
                }
            reports[name] = dataclasses.asdict(result.report)
        best["events_per_s"] = best["events"] / best["wall_s"]
        best["normalized"] = best["events_per_s"] / calibration
        profiler.record(f"simulate.{name}", best["wall_s"],
                        units=best["events"])
        policies[name] = best

    # v2 ``sharded`` row: the same bench workload under a K-shard
    # calendar, plus the bit-identity proof against the unsharded row.
    sharded_best = None
    for _ in range(ROUNDS):
        policy, _ = build_policy("lard", None, params)
        cluster = ClusterSimulator(
            workload.trace, policy, params,
            warmup_fraction=BENCH.warmup_fraction,
            window_s=BENCH.duration_s, shards=SHARDED_K)
        t0 = time.perf_counter()
        result = cluster.run()
        wall = time.perf_counter() - t0
        if sharded_best is None or wall < sharded_best["wall_s"]:
            stats = result.shard_stats
            sharded_best = {
                "events": cluster.sim.events_processed,
                "wall_s": wall,
                "completed": result.report.completed,
                "cross_shard_events": stats.cross_shard_events,
                "lookahead_violations": stats.lookahead_violations,
                "report_identical": (dataclasses.asdict(result.report)
                                     == reports["lard"]),
            }
    sharded_best["events_per_s"] = (sharded_best["events"]
                                    / sharded_best["wall_s"])
    sharded_best["normalized"] = sharded_best["events_per_s"] / calibration
    profiler.record("simulate.sharded", sharded_best["wall_s"],
                    units=sharded_best["events"])

    # Calendar footprint: the same trace, eager vs pumped.
    eager = ClusterSimulator(
        workload.trace, build_policy("lard")[0], params,
        warmup_fraction=BENCH.warmup_fraction, window_s=BENCH.duration_s,
        arrival_window=0)
    eager.run()

    # Mined-model cache round trip (cold mine vs warm disk load).
    cache_dir = ARTIFACT.parent / ".bench_model_cache"
    cold_profiler, warm_profiler = PhaseProfiler(), PhaseProfiler()
    t0 = time.perf_counter()
    cached_mine_models(workload, params, cache=cache_dir,
                       profiler=cold_profiler)
    cold_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    cached_mine_models(workload, params, cache=cache_dir,
                       profiler=warm_profiler)
    warm_s = time.perf_counter() - t0

    aggregate = sum(p["events"] for p in policies.values()) / sum(
        p["wall_s"] for p in policies.values())
    return {
        "schema": BENCH_CORE_SCHEMA,
        "workload": "synthetic",
        "scale": BENCH.name,
        "calibration_ops_per_s": round(calibration, 1),
        "policies": {
            name: {
                "events": p["events"],
                "best_wall_s": round(p["wall_s"], 6),
                "events_per_s": round(p["events_per_s"], 1),
                "normalized_events_per_s": round(p["normalized"], 6),
                "completed": p["completed"],
                "calendar_high_water": p["calendar_high_water"],
            }
            for name, p in policies.items()
        },
        "sharded": {
            "policy": "lard",
            "shards": SHARDED_K,
            "events": sharded_best["events"],
            "best_wall_s": round(sharded_best["wall_s"], 6),
            "events_per_s": round(sharded_best["events_per_s"], 1),
            "normalized_events_per_s": round(sharded_best["normalized"], 6),
            "completed": sharded_best["completed"],
            "cross_shard_events": sharded_best["cross_shard_events"],
            "lookahead_violations": sharded_best["lookahead_violations"],
            "report_identical": sharded_best["report_identical"],
        },
        "aggregate_events_per_s": round(aggregate, 1),
        "normalized_aggregate": round(aggregate / calibration, 6),
        "calendar": {
            "trace_requests": len(workload.trace),
            "arrival_window": DEFAULT_ARRIVAL_WINDOW,
            "high_water_eager": eager.sim.calendar_high_water,
            "high_water_pumped":
                policies["lard"]["calendar_high_water"],
        },
        "model_cache": {
            "cold_mine_s": round(cold_s, 6),
            "warm_load_s": round(warm_s, 6),
            "warm_phases": sorted(
                name for name, _ in warm_profiler.items()),
        },
        "phase_timings": {
            name: {"wall_s": round(t.wall_s, 6), "calls": t.calls,
                   "units": t.units}
            for name, t in profiler.items()
        },
    }


def test_all_policies_made_progress(measurements):
    for name, p in measurements["policies"].items():
        assert p["completed"] > 0, name
        assert p["events_per_s"] > 0, name


def test_calendar_high_water_bounded_by_window(measurements):
    cal = measurements["calendar"]
    n = cal["trace_requests"]
    # Eager scheduling's calendar scales with the trace; the pump's is
    # bounded by the lookahead window plus in-flight work.
    assert cal["high_water_eager"] >= n
    assert cal["high_water_pumped"] <= cal["arrival_window"] + 512
    assert cal["high_water_pumped"] < n // 2


def test_sharded_row_bit_identical_and_made_progress(measurements):
    row = measurements["sharded"]
    assert row["shards"] == SHARDED_K
    assert row["completed"] > 0 and row["events_per_s"] > 0
    # The K=4 run's report equals the unsharded run field-for-field —
    # the bench-scale arm of the bit-identity battery.
    assert row["report_identical"] is True


def test_model_cache_round_trip(measurements):
    mc = measurements["model_cache"]
    # The warm pass must not have run any mining phase.
    assert not any(p.startswith("mine.") for p in mc["warm_phases"])
    assert "modelcache.hit" in mc["warm_phases"]
    # At BENCH scale, mining is now fast enough that unpickling is not
    # reliably quicker — only guard against the cache being
    # pathologically slower than mining (it pays off at full scale).
    assert mc["warm_load_s"] < mc["cold_mine_s"] * 3


def _baseline_normalized(committed: dict) -> float | None:
    """Gate metric from a committed artifact — v2, or v1 via the shim.

    The metric (machine-normalised aggregate events/sec over the three
    policy rows) is computed identically in both schemas; v1 artifacts
    simply lack the ``sharded`` row, so the gate reads straight through.
    Unknown schemas gate nothing.
    """
    if committed.get("schema") in (BENCH_CORE_SCHEMA, BENCH_CORE_SCHEMA_V1):
        value = committed.get("normalized_aggregate")
        return float(value) if value is not None else None
    return None


def test_events_per_sec_gate_and_artifact(measurements):
    """Gate against the committed baseline, then write the fresh artifact."""
    committed = None
    if BASELINE.exists():
        try:
            committed = json.loads(BASELINE.read_text())
        except ValueError:
            committed = None
    baseline = (_baseline_normalized(committed)
                if committed is not None else None)
    if baseline is not None:
        current = measurements["normalized_aggregate"]
        floor = baseline * (1.0 - TOLERANCE)
        if GATE:
            assert current >= floor, (
                f"core regression: normalized aggregate {current:.4f} "
                f"below {floor:.4f} ({TOLERANCE:.0%} under committed "
                f"baseline {baseline:.4f}; raw "
                f"{measurements['aggregate_events_per_s']:,.0f} ev/s vs "
                f"committed {committed['aggregate_events_per_s']:,.0f})"
            )
    ARTIFACT.write_text(json.dumps(measurements, indent=2) + "\n")
    print(f"\n[wrote {ARTIFACT}]")
    for name, p in measurements["policies"].items():
        print(f"  {name:>6s}: {p['events_per_s']:>12,.0f} events/s "
              f"({p['events']} events, {p['best_wall_s']:.3f} s)")
    sh = measurements["sharded"]
    print(f"  sharded(K={sh['shards']}, {sh['policy']}): "
          f"{sh['events_per_s']:>12,.0f} events/s "
          f"(identical={sh['report_identical']})")
    print(f"  aggregate: {measurements['aggregate_events_per_s']:,.0f} "
          f"events/s (normalized {measurements['normalized_aggregate']:.4f})")
