"""Hook-purity family: ``on_event`` observers must only read.

The engine guarantees that attaching an observer (auditor, telemetry,
tracing) cannot perturb a run — which holds only if every observer is
pure observation.  These rules find the functions installed on an
``on_event`` hook (by name convention or by assignment) and flag state
writes into the engine/cluster, calls to known-mutating engine
methods, and the same violations one call level deep in helpers the
hook invokes.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass

from .core import Diagnostic, FileContext
from .registry import rule

__all__: list[str] = []

_FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef

#: Functions with these names are observers by convention.
_HOOK_NAMES = frozenset({"on_event", "_on_event"})

#: Attribute names through which an observer reaches shared engine
#: state; writes *through* these are writes into the engine.
_ENGINE_ATTRS = frozenset({
    "sim", "engine", "cluster", "simulator", "servers", "frontend",
    "policy", "cache", "replicator",
})

#: Methods that mutate engine/cluster/cache state when called on
#: anything that is not a hook-local object.
_MUTATORS = frozenset({
    "schedule", "schedule_at", "schedule_at_reserved",
    "reserve_sequences", "submit", "inject", "install", "put", "evict",
    "promote", "close_connection", "run", "step", "add_server",
    "remove_server",
})


@dataclass(frozen=True)
class _Violation:
    node: ast.AST
    kind: str  # "write" | "call"
    detail: str


def _root_name(node: ast.expr) -> str | None:
    """Root ``Name`` of an attribute/subscript chain, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _chain_attrs(node: ast.expr) -> list[str]:
    """Attribute names along a target chain, outermost last."""
    attrs: list[str] = []
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if isinstance(node, ast.Attribute):
            attrs.append(node.attr)
        node = node.value
    attrs.reverse()
    return attrs


def _is_fresh_value(value: ast.expr) -> bool:
    """True when the expression builds a *new* object rather than
    reaching into existing state: literals, comprehensions, and
    constructor-style calls (a plain ``Name(...)``, e.g. ``dict()`` or
    ``Window(...)``).  ``self.cluster.servers[0].cache`` or
    ``obj.method()`` results stay tainted — they may alias engine
    state."""
    if isinstance(value, (
        ast.List, ast.Dict, ast.Set, ast.Tuple,
        ast.ListComp, ast.DictComp, ast.SetComp, ast.Constant,
        ast.JoinedStr,
    )):
        return True
    if isinstance(value, ast.Call):
        return isinstance(value.func, ast.Name)
    return False


def _fresh_locals(fn: _FunctionNode) -> set[str]:
    """Names bound in the function to freshly constructed objects —
    writes to (and mutating calls on) these are hook-private.

    Parameters, loop targets, and locals assigned from attribute
    chains are deliberately *excluded*: a name aliasing the cluster is
    still shared state no matter where it was bound.  The first
    parameter of a method (``self``/``cls``) is handled separately by
    the caller.
    """
    fresh: set[str] = set()
    tainted: set[str] = set()
    for node in _walk_own(fn):
        pairs: list[tuple[ast.expr, ast.expr]] = []
        if isinstance(node, ast.Assign):
            pairs = [(t, node.value) for t in node.targets]
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            pairs = [(node.target, node.value)]
        for target, value in pairs:
            if isinstance(target, ast.Name):
                (fresh if _is_fresh_value(value) else tainted).add(target.id)
    # A name ever bound to possibly-shared state is shared everywhere:
    # flow order doesn't matter for a conservative check.
    return fresh - tainted


def _self_name(fn: _FunctionNode, in_class: bool) -> str | None:
    if in_class and fn.args.args:
        return fn.args.args[0].arg
    return None


def _walk_own(fn: _FunctionNode) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested defs (a
    nested function runs in its own context, and becomes a hook itself
    if installed)."""
    stack: list[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _scan_body(
    fn: _FunctionNode, *, in_class: bool
) -> Iterator[_Violation]:
    """Yield purity violations in one function body (non-recursive:
    nested defs are scanned only for their own installation)."""
    self_name = _self_name(fn, in_class)
    fresh = _fresh_locals(fn)

    def is_private_target(target: ast.expr) -> bool:
        root = _root_name(target)
        if root is None:
            # e.g. subscript of a call result — can't prove, stay quiet.
            return True
        attrs = _chain_attrs(target)
        if root == self_name:
            # The observer's own counters are fair game, but a chain
            # that passes through an engine-ish attribute
            # (self.cluster.x = ...) writes shared state.
            return not any(a in _ENGINE_ATTRS for a in attrs[:-1])
        return root in fresh

    for node in _walk_own(fn):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            if isinstance(node, ast.AnnAssign) and node.value is None:
                continue  # a bare annotation binds nothing
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    if not is_private_target(target):
                        yield _Violation(
                            node, "write",
                            f"writes {ast.unparse(target)}",
                        )
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    if not is_private_target(target):
                        yield _Violation(
                            node, "write",
                            f"deletes {ast.unparse(target)}",
                        )
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
                root = _root_name(func.value)
                receiver_private = root is not None and root in fresh
                if not receiver_private:
                    yield _Violation(
                        node, "call",
                        f"calls mutating {ast.unparse(func)}(...)",
                    )


@dataclass(frozen=True)
class _Hook:
    fn: _FunctionNode
    in_class: bool
    how: str  # how it became a hook, for messages


def _collect_hooks(ctx: FileContext) -> list[_Hook]:
    """Find every function installed as an ``on_event`` observer."""
    functions: dict[ast.AST, bool] = {}  # node -> defined inside a class
    by_name: dict[str, list[_FunctionNode]] = {}
    class_methods: dict[str, dict[str, _FunctionNode]] = {}

    class Indexer(ast.NodeVisitor):
        def __init__(self) -> None:
            self.class_stack: list[str] = []

        def visit_ClassDef(self, node: ast.ClassDef) -> None:
            self.class_stack.append(node.name)
            class_methods.setdefault(node.name, {})
            self.generic_visit(node)
            self.class_stack.pop()

        def _index_fn(self, node: _FunctionNode) -> None:
            in_class = bool(self.class_stack) and isinstance(
                ctx.parents.get(node), ast.ClassDef
            )
            functions[node] = in_class
            by_name.setdefault(node.name, []).append(node)
            if in_class:
                class_methods[self.class_stack[-1]][node.name] = node
            self.generic_visit(node)

        visit_FunctionDef = _index_fn
        visit_AsyncFunctionDef = _index_fn

    Indexer().visit(ctx.tree)

    hooks: dict[ast.AST, _Hook] = {}

    def add(fn: _FunctionNode, how: str) -> None:
        if fn not in hooks:
            hooks[fn] = _Hook(fn, functions.get(fn, False), how)

    # (a) by naming convention
    for name in _HOOK_NAMES:
        for fn in by_name.get(name, []):
            add(fn, f"named {name}")

    # (b) by assignment to <anything>.on_event
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if not (
                isinstance(target, ast.Attribute)
                and target.attr == "on_event"
            ):
                continue
            value = node.value
            if isinstance(value, ast.Name):
                for fn in by_name.get(value.id, []):
                    add(fn, "assigned to .on_event")
            elif isinstance(value, ast.Attribute) and isinstance(
                value.value, ast.Name
            ):
                # self._method / cls._method: resolve within the class
                # enclosing the assignment.
                cls = ctx.enclosing(node, ast.ClassDef)
                if isinstance(cls, ast.ClassDef):
                    method = class_methods.get(cls.name, {}).get(value.attr)
                    if method is not None:
                        add(method, "assigned to .on_event")
    return list(hooks.values())


def _callees(
    ctx: FileContext, hook: _Hook
) -> Iterator[tuple[ast.Call, _FunctionNode, bool, str]]:
    """Same-module functions/methods a hook calls directly."""
    module_fns: dict[str, _FunctionNode] = {}
    for node in ctx.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            module_fns[node.name] = node
    cls = ctx.enclosing(hook.fn, ast.ClassDef)
    methods: dict[str, _FunctionNode] = {}
    if isinstance(cls, ast.ClassDef):
        for node in cls.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                methods[node.name] = node
    self_name = _self_name(hook.fn, hook.in_class)
    for node in _walk_own(hook.fn):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name) and func.id in module_fns:
            yield node, module_fns[func.id], False, func.id
        elif (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == self_name
            and func.attr in methods
        ):
            yield node, methods[func.attr], True, f"self.{func.attr}"


_BAD_EXAMPLE_WRITE = (
    "class Watcher:\n"
    "    def attach(self, cluster):\n"
    "        self.cluster = cluster\n"
    "        cluster.sim.on_event = self._on_event\n"
    "    def _on_event(self, time):\n"
    "        self.cluster.warmup_fraction = 0.0\n"
)

_GOOD_EXAMPLE = (
    "class Watcher:\n"
    "    def attach(self, cluster):\n"
    "        self.cluster = cluster\n"
    "        self.events = 0\n"
    "        cluster.sim.on_event = self._on_event\n"
    "    def _on_event(self, time):\n"
    "        self.events += 1\n"
)


@rule(
    "hook-state-write",
    "hooks",
    "an on_event observer must not write engine/cluster attributes — "
    "only its own counters",
    bad_example=_BAD_EXAMPLE_WRITE,
    bad_lines=(6,),
    good_example=_GOOD_EXAMPLE,
)
def check_hook_state_write(ctx: FileContext) -> Iterator[Diagnostic]:
    for hook in _collect_hooks(ctx):
        for v in _scan_body(hook.fn, in_class=hook.in_class):
            if v.kind == "write":
                yield ctx.diagnostic(
                    v.node, "hook-state-write",
                    f"observer {hook.fn.name} ({hook.how}) {v.detail}; "
                    "hooks are pure observation",
                )


@rule(
    "hook-mutating-call",
    "hooks",
    "an on_event observer must not call mutating engine methods "
    "(schedule*, inject, install, put, evict, ...)",
    bad_example=(
        "class Watcher:\n"
        "    def __init__(self, sim):\n"
        "        self.sim = sim\n"
        "        sim.on_event = self._on_event\n"
        "    def _on_event(self, time):\n"
        "        self.sim.schedule(1.0, lambda: None)\n"
    ),
    bad_lines=(6,),
    good_example=_GOOD_EXAMPLE,
)
def check_hook_mutating_call(ctx: FileContext) -> Iterator[Diagnostic]:
    for hook in _collect_hooks(ctx):
        for v in _scan_body(hook.fn, in_class=hook.in_class):
            if v.kind == "call":
                yield ctx.diagnostic(
                    v.node, "hook-mutating-call",
                    f"observer {hook.fn.name} ({hook.how}) {v.detail}; "
                    "hooks are pure observation",
                )


@rule(
    "hook-transitive",
    "hooks",
    "a helper called from an on_event observer must itself be pure "
    "(checked one call level deep)",
    bad_example=(
        "class Watcher:\n"
        "    def attach(self, cluster):\n"
        "        self.cluster = cluster\n"
        "        cluster.sim.on_event = self._on_event\n"
        "    def _on_event(self, time):\n"
        "        self._sweep()\n"
        "    def _sweep(self):\n"
        "        self.cluster.trace = None\n"
    ),
    bad_lines=(6,),
    good_example=(
        "class Watcher:\n"
        "    def attach(self, cluster):\n"
        "        self.cluster = cluster\n"
        "        cluster.sim.on_event = self._on_event\n"
        "    def _on_event(self, time):\n"
        "        self._sweep()\n"
        "    def _sweep(self):\n"
        "        self.seen = len(self.cluster.servers)\n"
    ),
)
def check_hook_transitive(ctx: FileContext) -> Iterator[Diagnostic]:
    hooks = _collect_hooks(ctx)
    hook_fns = {h.fn for h in hooks}
    for hook in hooks:
        for call, callee, in_class, label in _callees(ctx, hook):
            if callee in hook_fns or callee is hook.fn:
                continue  # already checked as a hook in its own right
            for v in _scan_body(callee, in_class=in_class):
                yield ctx.diagnostic(
                    call, "hook-transitive",
                    f"observer {hook.fn.name} calls {label}(), which "
                    f"{v.detail} at line {v.node.lineno}; helpers "
                    "reached from a hook must be pure observation",
                )
