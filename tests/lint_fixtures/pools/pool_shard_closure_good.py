"""Good: scheduled callbacks stay off private engine state."""


class Worker:
    def __init__(self):
        self.ticks = 0

    def tick(self):
        self.ticks += 1

    def start(self, sim):
        # Bound method: picklable via (instance, name), no heap capture.
        sim.schedule_at(0.0, self.tick)

    def nudge(self, sim, delay):
        # Closures over plain data (not calendar internals) are fine;
        # this mirrors power.py's hibernation kick.
        sid = self.ticks
        sim.schedule(delay, lambda: self.note(sid))

    def note(self, sid):
        self.ticks = sid
