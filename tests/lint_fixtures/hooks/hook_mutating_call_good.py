"""Good: observers only read engine state; locals are fair game."""


class Sampler:
    def __init__(self, cluster) -> None:
        self.cluster = cluster
        self.samples = []
        cluster.sim.on_event = self._on_event

    def _on_event(self, time: float) -> None:
        # Reading queue lengths and appending to own state: pure.
        depths = [s.cpu.queue_length for s in self.cluster.servers]
        self.samples.append((time, max(depths, default=0)))
        scratch = {}
        scratch.setdefault("last", time)  # a hook-local dict
