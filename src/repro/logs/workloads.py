"""Workload presets matching the paper's three evaluation traces.

Each preset returns a :class:`Workload`: the website model, a *training*
log (mined offline, as the paper's scripts mine the server's historical
logs) and an *evaluation* trace (replayed through the simulated cluster).
Training and evaluation traffic are drawn from the same site and user
population but with independent seeds, so the miners never see the exact
evaluation sequence.

Paper trace statistics reproduced (DESIGN.md §3):

* **CS department** — 27,000 requests over 4,700 files, average 12 KB,
  departmental user categories.
* **WorldCup'98** — 897,498 requests over 3,809 files, extreme
  popularity skew.  ``scale`` shrinks the request count for fast runs
  while preserving the file set and skew.
* **Synthetic** — 30,000 requests over 3,000 files, average 10 KB.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .clf import RecordStream
from .records import LogRecord, Trace
from .replay import RequestSource
from .sessions import trace_from_records
from .site import SiteSpec, Website, build_site
from .synthetic import TraceGenerator, TrafficSpec

__all__ = [
    "Workload",
    "cs_department_workload",
    "worldcup_workload",
    "synthetic_workload",
    "training_log_records",
    "WORKLOAD_PRESETS",
    "make_workload",
]


@dataclass(slots=True)
class Workload:
    """A complete experiment input: site + training log + eval trace.

    ``training_records`` is usually a materialized list; workloads loaded
    with ``load_workload(..., stream=True)`` carry a re-iterable
    :class:`~repro.logs.clf.RecordStream` instead, and mining then runs
    in one constant-memory pass.  Likewise ``trace`` is usually a
    materialized :class:`Trace` but may be a lazy re-iterable
    :class:`~repro.logs.replay.RequestSource` (streamed loads), which
    the simulator replays bit-identically without holding the requests.
    """

    name: str
    site: Website
    training_records: Sequence[LogRecord] | RecordStream
    trace: Trace | RequestSource

    @property
    def num_requests(self) -> int:
        return len(self.trace)

    @property
    def num_files(self) -> int:
        return self.site.num_objects

    @property
    def site_bytes(self) -> int:
        return self.site.total_bytes

    def summary(self) -> str:
        """One-line description used by the experiment harness."""
        mean = self.site_bytes / max(self.num_files, 1)
        return (
            f"{self.name}: {self.num_requests} requests, "
            f"{self.num_files} files, mean {mean / 1024:.1f} KB, "
            f"site {self.site_bytes / (1 << 20):.1f} MB"
        )


def _apply_load(
    spec: TrafficSpec,
    session_rate: float | None,
    duration_s: float | None,
    think_time_mean: float | None = None,
    max_session_pages: int | None = None,
) -> TrafficSpec:
    """Apply experiment load overrides to an eval traffic spec.

    ``session_rate`` raises concurrency (offered load); ``duration_s``
    switches to sustained-window generation, with ``num_requests``
    relaxed into a generous safety cap.  ``think_time_mean`` and
    ``max_session_pages`` shorten sessions so short measurement windows
    still see steady-state traffic.
    """
    if session_rate is not None:
        spec.session_rate = session_rate
    if think_time_mean is not None:
        spec.think_time_mean = think_time_mean
    if max_session_pages is not None:
        spec.max_session_pages = max_session_pages
    if duration_s is not None:
        spec.duration_s = duration_s
        per_session = spec.mean_session_pages * 5  # pages + embedded, rough
        spec.num_requests = max(
            spec.num_requests,
            int(spec.session_rate * duration_s * per_session * 2),
        )
    return spec


def _make(
    name: str,
    site: Website,
    eval_spec: TrafficSpec,
    train_spec: TrafficSpec,
) -> Workload:
    training = TraceGenerator(site, train_spec).generate_records()
    trace = trace_from_records(
        TraceGenerator(site, eval_spec).generate_records(),
        name=f"{name}-eval",
    )
    return Workload(name=name, site=site, training_records=training, trace=trace)


def _cs_department_config(
    scale: float, seed: int
) -> tuple[Website, TrafficSpec, TrafficSpec]:
    """Site + eval/training traffic specs for the CS-department preset."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    site = build_site(SiteSpec(
        categories=(
            "current-students", "prospective-students",
            "faculty", "staff", "other",
        ),
        # 5 categories x 235 pages ~ 1175 pages; with ~3 embedded objects
        # per page this lands near the paper's 4,700 distinct files.
        pages_per_category=235,
        mean_embedded=3.0,
        mean_page_size=8 * 1024,
        # Mix of 8 KB pages and ~13 KB objects averages ~12 KB per file.
        mean_object_size=13 * 1024,
        links_per_page=4,
        seed=seed,
    ), name="cs-department")
    n_eval = max(200, int(27_000 * scale))
    eval_spec = TrafficSpec(
        num_requests=n_eval,
        session_rate=18.0,
        mean_session_pages=6.0,
        think_time_mean=0.8,
        category_mix={
            "current-students": 0.38, "prospective-students": 0.17,
            "faculty": 0.16, "staff": 0.12, "other": 0.17,
        },
        seed=seed + 1,
    )
    train_spec = TrafficSpec(
        num_requests=max(400, int(2 * n_eval)),
        session_rate=18.0,
        mean_session_pages=6.0,
        think_time_mean=0.8,
        category_mix=eval_spec.category_mix,
        seed=seed + 2,
    )
    return site, eval_spec, train_spec


def cs_department_workload(
    *, scale: float = 1.0, seed: int = 101,
    session_rate: float | None = None, duration_s: float | None = None,
    think_time_mean: float | None = None,
    max_session_pages: int | None = None,
) -> Workload:
    """TAMU-CS-like workload: ~27 k requests, ~4.7 k files, avg 12 KB.

    The site has the paper's five departmental user categories; traffic
    is navigation-driven, so dependency-graph mining has real structure
    to find.  ``scale`` multiplies the request count (eval and training).
    """
    site, eval_spec, train_spec = _cs_department_config(scale, seed)
    eval_spec = _apply_load(eval_spec, session_rate, duration_s,
                            think_time_mean, max_session_pages)
    return _make("cs-department", site, eval_spec, train_spec)


def _worldcup_config(
    scale: float, seed: int
) -> tuple[Website, TrafficSpec, TrafficSpec]:
    """Site + eval/training traffic specs for the WorldCup preset."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    site = build_site(SiteSpec(
        categories=("scores", "teams", "news", "history"),
        # 4 x 210 pages plus ~3.5 embedded objects each ~ 3.8k files.
        pages_per_category=210,
        mean_embedded=3.5,
        mean_page_size=5 * 1024,
        mean_object_size=9 * 1024,
        links_per_page=5,
        seed=seed,
    ), name="worldcup")
    n_eval = max(500, int(897_498 * scale))
    eval_spec = TrafficSpec(
        num_requests=n_eval,
        session_rate=60.0,
        mean_session_pages=8.0,
        think_time_mean=0.5,
        zipf_alpha=1.25,
        link_follow_prob=0.6,
        seed=seed + 1,
    )
    train_spec = TrafficSpec(
        num_requests=max(1000, int(n_eval)),
        session_rate=60.0,
        mean_session_pages=8.0,
        think_time_mean=0.5,
        zipf_alpha=1.25,
        link_follow_prob=0.6,
        seed=seed + 2,
    )
    return site, eval_spec, train_spec


def worldcup_workload(
    *, scale: float = 0.05, seed: int = 202,
    session_rate: float | None = None, duration_s: float | None = None,
    think_time_mean: float | None = None,
    max_session_pages: int | None = None,
) -> Workload:
    """WorldCup'98-like workload: 3,809 files, huge request count, heavy skew.

    The full trace is 897,498 requests; the default ``scale=0.05`` keeps
    runs fast (~45 k requests) while preserving the file set and the
    Zipf popularity skew that defines this workload.  Pass ``scale=1.0``
    for the paper-size trace.
    """
    site, eval_spec, train_spec = _worldcup_config(scale, seed)
    eval_spec = _apply_load(eval_spec, session_rate, duration_s,
                            think_time_mean, max_session_pages)
    return _make("worldcup", site, eval_spec, train_spec)


def _synthetic_config(
    scale: float, seed: int
) -> tuple[Website, TrafficSpec, TrafficSpec]:
    """Site + eval/training traffic specs for the synthetic preset."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    site = build_site(SiteSpec(
        categories=("a", "b", "c"),
        # 3 x 250 pages with ~3 embedded objects ~ 3k files.
        pages_per_category=250,
        mean_embedded=3.0,
        mean_page_size=7 * 1024,
        mean_object_size=11 * 1024,
        links_per_page=4,
        seed=seed,
    ), name="synthetic")
    n_eval = max(200, int(30_000 * scale))
    eval_spec = TrafficSpec(
        num_requests=n_eval,
        session_rate=20.0,
        mean_session_pages=5.0,
        think_time_mean=0.7,
        seed=seed + 1,
    )
    train_spec = TrafficSpec(
        num_requests=max(400, int(1.5 * n_eval)),
        session_rate=20.0,
        mean_session_pages=5.0,
        think_time_mean=0.7,
        seed=seed + 2,
    )
    return site, eval_spec, train_spec


def synthetic_workload(
    *, scale: float = 1.0, seed: int = 303,
    session_rate: float | None = None, duration_s: float | None = None,
    think_time_mean: float | None = None,
    max_session_pages: int | None = None,
) -> Workload:
    """The paper's synthetic trace: 30 k requests, 3 k files, avg 10 KB."""
    site, eval_spec, train_spec = _synthetic_config(scale, seed)
    eval_spec = _apply_load(eval_spec, session_rate, duration_s,
                            think_time_mean, max_session_pages)
    return _make("synthetic", site, eval_spec, train_spec)


_PRESET_CONFIGS = {
    "cs-department": _cs_department_config,
    "worldcup": _worldcup_config,
    "synthetic": _synthetic_config,
}

_PRESET_SEEDS = {"cs-department": 101, "worldcup": 202, "synthetic": 303}


def training_log_records(
    name: str, *, scale: float = 1.0, seed: int | None = None
) -> list[LogRecord]:
    """Just the training log of a preset — no eval trace is built.

    Identical to ``make_workload(name, scale=scale).training_records``
    (same site, same spec, same seed), but skips generating the usually
    larger evaluation side.  The memory benchmark uses this to write a
    large training log without paying for a trace it will not replay.
    """
    try:
        config = _PRESET_CONFIGS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(_PRESET_CONFIGS)}"
        ) from None
    site, _eval_spec, train_spec = config(
        scale, _PRESET_SEEDS[name] if seed is None else seed
    )
    return TraceGenerator(site, train_spec).generate_records()


WORKLOAD_PRESETS = {
    "cs-department": cs_department_workload,
    "worldcup": worldcup_workload,
    "synthetic": synthetic_workload,
}


def make_workload(name: str, **kwargs) -> Workload:
    """Build a preset workload by name (see :data:`WORKLOAD_PRESETS`)."""
    try:
        factory = WORKLOAD_PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(WORKLOAD_PRESETS)}"
        ) from None
    return factory(**kwargs)
