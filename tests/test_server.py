"""Tests for the backend server model."""

import pytest

from repro.core import SimulationParams
from repro.sim import BackendServer, Simulator


def make_server(sim=None, **overrides):
    sim = sim or Simulator()
    defaults = dict(cache_bytes=1024 * 1024, n_backends=1)
    defaults.update(overrides)
    params = SimulationParams(**defaults)
    return sim, BackendServer(sim, 0, params)


class TestDemandPath:
    def test_miss_then_hit(self):
        sim, srv = make_server()
        results = []
        srv.handle("/a", 10 * 1024, lambda sid, hit: results.append(hit))
        sim.run()
        srv.handle("/a", 10 * 1024, lambda sid, hit: results.append(hit))
        sim.run()
        assert results == [False, True]
        assert srv.completed == 2

    def test_miss_timing(self):
        sim, srv = make_server()
        done_at = []
        srv.handle("/a", 10 * 1024, lambda sid, hit: done_at.append(sim.now))
        sim.run()
        p = srv.params
        expected = (p.backend_cpu_s + p.disk_service_s(10 * 1024)
                    + p.transmit_s(10 * 1024))
        assert done_at[0] == pytest.approx(expected)

    def test_hit_timing_skips_disk(self):
        sim, srv = make_server()
        srv.handle("/a", 10 * 1024, lambda sid, hit: None)
        sim.run()
        t0 = sim.now
        done_at = []
        srv.handle("/a", 10 * 1024, lambda sid, hit: done_at.append(sim.now))
        sim.run()
        p = srv.params
        assert done_at[0] - t0 == pytest.approx(
            p.backend_cpu_s + p.transmit_s(10 * 1024))

    def test_invalid_size(self):
        _, srv = make_server()
        with pytest.raises(ValueError):
            srv.handle("/a", 0, lambda sid, hit: None)

    def test_load_tracks_inflight(self):
        sim, srv = make_server()
        srv.handle("/a", 1024, lambda sid, hit: None)
        srv.handle("/b", 1024, lambda sid, hit: None)
        assert srv.load == 2
        sim.run()
        assert srv.load == 0
        assert srv.is_idle

    def test_demand_coalescing_single_disk_read(self):
        sim, srv = make_server()
        hits = []
        for _ in range(3):
            srv.handle("/same", 10 * 1024, lambda sid, hit: hits.append(hit))
        sim.run()
        assert hits == [False, False, False]
        # One disk read served all three.
        assert srv.disk.jobs_served == 1

    def test_worker_pool_limits_concurrency(self):
        sim, srv = make_server(backend_workers=2)
        order = []
        # Two slow misses occupy both workers; a would-be hit waits.
        srv.handle("/m1", 100 * 1024, lambda sid, hit: order.append("m1"))
        srv.handle("/m2", 100 * 1024, lambda sid, hit: order.append("m2"))
        srv.cache.insert("/h", 1024)
        srv.handle("/h", 1024, lambda sid, hit: order.append("h"))
        sim.run()
        assert order[0] in ("m1", "m2")
        assert order[-1] == "h" or order[1] == "h"
        # The hit could not finish before the first miss despite being
        # orders of magnitude cheaper.
        assert order[0] != "h"


class TestPrefetch:
    def test_prefetch_populates_cache(self):
        sim, srv = make_server()
        assert srv.prefetch("/p", 10 * 1024)
        sim.run()
        assert srv.cache.peek("/p")
        assert srv.prefetches_issued == 1

    def test_prefetch_dedup(self):
        sim, srv = make_server()
        assert srv.prefetch("/p", 1024)
        assert not srv.prefetch("/p", 1024)
        sim.run()
        assert not srv.prefetch("/p", 1024)  # already cached
        assert srv.prefetches_issued == 1

    def test_prefetch_hit_counted_once(self):
        sim, srv = make_server()
        srv.prefetch("/p", 1024)
        sim.run()
        results = []
        srv.handle("/p", 1024, lambda sid, hit: results.append(hit))
        sim.run()
        srv.handle("/p", 1024, lambda sid, hit: results.append(hit))
        sim.run()
        assert results == [True, True]
        assert srv.prefetch_useful == 1

    def test_demand_coalesces_with_inflight_prefetch(self):
        sim, srv = make_server()
        srv.prefetch("/p", 10 * 1024)
        results = []
        srv.handle("/p", 10 * 1024, lambda sid, hit: results.append(hit))
        sim.run()
        assert results == [False]          # honest miss, but...
        assert srv.disk.jobs_served == 1   # ...only one read happened
        assert srv.prefetch_useful == 1

    def test_prefetch_yields_to_demand(self):
        sim, srv = make_server()
        order = []
        # Fill the disk with a demand read first so both queue.
        srv.handle("/d1", 50 * 1024, lambda sid, hit: order.append("d1"))
        srv.prefetch("/p", 50 * 1024)
        srv.handle("/d2", 50 * 1024, lambda sid, hit: order.append("d2"))
        sim.run()
        assert order == ["d1", "d2"]
        # The prefetch was served last (after both demand reads).
        assert srv.cache.peek("/p")

    def test_prefetch_backlog_throttle(self):
        sim, srv = make_server()
        # Pile prefetch reads onto the disk until the throttle trips.
        accepted = 0
        for i in range(srv.PREFETCH_DISK_BACKLOG_LIMIT + 5):
            if srv.prefetch(f"/p{i}", 10 * 1024):
                accepted += 1
            else:
                break
        # One in service plus LIMIT queued, then refusal.
        assert accepted == srv.PREFETCH_DISK_BACKLOG_LIMIT + 1
        sim.run()
        assert srv.prefetch("/fresh", 1024)

    def test_invalid_size(self):
        _, srv = make_server()
        with pytest.raises(ValueError):
            srv.prefetch("/p", -1)


class TestReplicas:
    def test_receive_replica_pins(self):
        sim, srv = make_server()
        assert srv.receive_replica("/hot", 1024)
        assert srv.cache.pinned_bytes == 1024

    def test_receive_replica_unpinned(self):
        sim, srv = make_server()
        srv.receive_replica("/warm", 1024, pin=False)
        assert srv.cache.pinned_bytes == 0
        assert srv.cache.peek("/warm")

    def test_invalid_size(self):
        _, srv = make_server()
        with pytest.raises(ValueError):
            srv.receive_replica("/x", 0)


class TestUtilization:
    def test_reports_cpu_and_disk(self):
        sim, srv = make_server()
        srv.handle("/a", 10 * 1024, lambda sid, hit: None)
        sim.run()
        util = srv.utilization(sim.now)
        assert set(util) == {"cpu", "disk"}
        assert 0 < util["cpu"] <= 1
        assert 0 < util["disk"] <= 1
