"""Tests for the website model and site builder."""

import pytest

from repro.logs import Category, EmbeddedObject, Page, SiteSpec, Website, build_site


def page(path, size=1000, embedded=(), links=()):
    return Page(path=path, size=size, embedded=tuple(embedded),
                links=tuple(links))


class TestWebsiteValidation:
    def test_duplicate_page_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Website([page("/a"), page("/a")])

    def test_unknown_link_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            Website([page("/a", links=("/nope",))])

    def test_category_unknown_page_rejected(self):
        with pytest.raises(ValueError, match="unknown page"):
            Website([page("/a")],
                    [Category("c", ("/nope",), ("/a",))])

    def test_shared_embedded_object_rejected(self):
        obj = EmbeddedObject("/shared.gif", 10)
        with pytest.raises(ValueError, match="two bundles"):
            Website([page("/a", embedded=[obj]), page("/b", embedded=[obj])])

    def test_embedded_collides_with_page_rejected(self):
        obj = EmbeddedObject("/b", 10)
        with pytest.raises(ValueError, match="collides"):
            Website([page("/a", embedded=[obj]), page("/b")])


class TestWebsiteQueries:
    def make(self):
        objs = [EmbeddedObject("/a_i.gif", 50), EmbeddedObject("/a_j.gif", 70)]
        return Website(
            [page("/a", 100, objs, links=("/b",)), page("/b", 200)],
            [Category("cat", ("/a",), ("/a", "/b"))],
        )

    def test_object_sizes_and_totals(self):
        site = self.make()
        sizes = site.object_sizes()
        assert sizes == {"/a": 100, "/a_i.gif": 50, "/a_j.gif": 70, "/b": 200}
        assert site.total_bytes == 420
        assert site.num_objects == 4

    def test_bundles(self):
        site = self.make()
        assert site.bundles() == {"/a": ("/a_i.gif", "/a_j.gif"), "/b": ()}

    def test_bundle_bytes(self):
        site = self.make()
        assert site.page("/a").bundle_bytes == 220

    def test_contains_and_category(self):
        site = self.make()
        assert "/a" in site
        assert "/zzz" not in site
        assert site.category_of("/b") == "cat"
        assert site.category_of("/zzz") is None


class TestBuildSite:
    def test_default_structure(self):
        site = build_site()
        spec = SiteSpec()
        assert len(site.pages) == len(spec.categories) * spec.pages_per_category
        assert len(site.categories) == len(spec.categories)
        for cat in site.categories:
            assert cat.entry_pages[0].endswith("/index.html")
            assert len(cat.member_pages) == spec.pages_per_category

    def test_deterministic(self):
        a = build_site(SiteSpec(seed=3))
        b = build_site(SiteSpec(seed=3))
        assert a.object_sizes() == b.object_sizes()
        assert a.bundles() == b.bundles()

    def test_seed_changes_sizes(self):
        a = build_site(SiteSpec(seed=3))
        b = build_site(SiteSpec(seed=4))
        assert a.object_sizes() != b.object_sizes()

    def test_links_all_resolve(self):
        site = build_site(SiteSpec(pages_per_category=10))
        for p in site.pages.values():
            for t in p.links:
                assert t in site

    def test_mean_sizes_near_spec(self):
        spec = SiteSpec(pages_per_category=200, mean_page_size=8192)
        site = build_site(spec)
        sizes = [p.size for p in site.pages.values()]
        mean = sum(sizes) / len(sizes)
        assert 0.6 * spec.mean_page_size < mean < 1.6 * spec.mean_page_size

    def test_too_few_pages_rejected(self):
        with pytest.raises(ValueError):
            build_site(SiteSpec(pages_per_category=1))
