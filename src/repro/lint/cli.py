"""``repro lint`` / ``python -m repro.lint`` entry point.

Exit codes follow CI conventions: 0 clean, 1 findings (or self-test
failure), 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .core import Linter
from .registry import all_rules, families, get_rule

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "AST contract checker: determinism, hook purity, and "
            "pool-safety over the repro tree"
        ),
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: src/ next to the "
        "current directory, else the installed repro package)",
    )
    parser.add_argument(
        "--rule", action="append", default=None, metavar="NAME",
        help="run only this rule (repeatable)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rules by family and exit",
    )
    parser.add_argument(
        "--self-test", action="store_true",
        help="verify every registered rule fires on its known-bad "
        "snippet and stays quiet on its known-good one",
    )
    return parser


def _default_paths() -> list[Path]:
    src = Path("src")
    if (src / "repro").is_dir():
        return [src]
    import repro

    pkg = Path(repro.__file__).parent
    return [pkg]


def _list_rules() -> str:
    lines: list[str] = []
    for family, rules in families().items():
        lines.append(f"{family} ({len(rules)} rules)")
        for r in rules:
            lines.append(f"  {r.name}: {r.summary}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    if args.self_test:
        from .selftest import run_selftest

        report = run_selftest()
        print(report.summary())
        return 0 if report.ok else 1

    if args.rule:
        try:
            rules = [get_rule(name) for name in args.rule]
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
    else:
        rules = None

    paths = [Path(p) for p in args.paths] if args.paths else _default_paths()
    for p in paths:
        if not p.exists():
            print(f"error: no such path: {p}", file=sys.stderr)
            return 2

    diagnostics = Linter(rules).lint_paths(paths)
    for diag in diagnostics:
        print(diag.format())
    n_rules = len(rules) if rules is not None else len(all_rules())
    print(
        f"reprolint: {len(diagnostics)} finding(s) "
        f"({n_rules} rules over {', '.join(str(p) for p in paths)})",
        file=sys.stderr,
    )
    return 1 if diagnostics else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
