"""Byte-capacity LRU cache modelling a backend server's file memory.

The paper's backends hold "the amount of website's data that can be
accommodated in the backend servers' memory" (Fig. 8 sweeps this).  The
cache is LRU over whole files with

* **pinning** — replicated hot files (Algorithm 3) can be pinned so
  ordinary churn does not evict them before the next replication round;
* **event callbacks** — the front-end dispatcher's locality table tracks
  which servers hold which files by subscribing to insert/evict events,
  exactly as LARD's dispatcher tracks server sets per target.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

__all__ = ["CacheEntry", "LRUCache"]


@dataclass(slots=True)
class CacheEntry:
    size: int
    pinned: bool = False


class LRUCache:
    """LRU over named files with a byte capacity.

    Parameters
    ----------
    capacity_bytes:
        Total bytes the cache may hold.
    on_insert / on_evict:
        Optional callbacks ``fn(path)`` fired when a file enters/leaves.
    """

    def __init__(
        self,
        capacity_bytes: int,
        *,
        on_insert: Callable[[str], None] | None = None,
        on_evict: Callable[[str], None] | None = None,
    ) -> None:
        if capacity_bytes < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity_bytes = capacity_bytes
        self._entries: OrderedDict[str, CacheEntry] = OrderedDict()
        self._resident = 0
        self._pinned_bytes = 0
        self.on_insert = on_insert
        self.on_evict = on_evict
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- queries -----------------------------------------------------------

    def __contains__(self, path: str) -> bool:
        return path in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def resident_bytes(self) -> int:
        return self._resident

    @property
    def pinned_bytes(self) -> int:
        return self._pinned_bytes

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def peek(self, path: str) -> bool:
        """Presence check without touching recency or hit counters."""
        return path in self._entries

    # -- operations ---------------------------------------------------------

    def access(self, path: str) -> bool:
        """Demand access: returns hit/miss and refreshes recency."""
        entry = self._entries.get(path)
        if entry is None:
            self.misses += 1
            return False
        self._entries.move_to_end(path)
        self.hits += 1
        return True

    def insert(self, path: str, size: int, *, pinned: bool = False) -> list[str]:
        """Bring a file into memory, evicting LRU files as needed.

        Returns the list of evicted paths.  A file larger than the
        unpinned capacity is not cached (real servers stream such files).
        Re-inserting an existing file refreshes recency and may change
        its pinned state.
        """
        if size <= 0:
            raise ValueError("size must be positive")
        existing = self._entries.get(path)
        if existing is not None:
            if existing.size != size:
                raise ValueError(
                    f"size mismatch for {path!r}: {existing.size} != {size}"
                )
            if pinned != existing.pinned:
                self._pinned_bytes += size if pinned else -size
                existing.pinned = pinned
            self._entries.move_to_end(path)
            return []
        # Up-front fit check: admit only if evicting unpinned files can
        # make room.  Deciding before touching any victim means a
        # doomed insert evicts nothing — the old give-up-mid-eviction
        # path churned the cache (and fired on_evict locality-table
        # callbacks) without the new file ever entering memory.
        if size > self.capacity_bytes - self._pinned_bytes:
            return []
        evicted: list[str] = []
        while self._resident + size > self.capacity_bytes:
            victim = self._next_victim()
            if victim is None:  # pragma: no cover - guarded above
                raise RuntimeError(
                    "eviction underflow despite up-front fit check"
                )
            self._remove(victim)
            evicted.append(victim)
            self.evictions += 1
            if self.on_evict:
                self.on_evict(victim)
        self._entries[path] = CacheEntry(size=size, pinned=pinned)
        self._resident += size
        if pinned:
            self._pinned_bytes += size
        if self.on_insert:
            self.on_insert(path)
        return evicted

    def _next_victim(self) -> str | None:
        for path, entry in self._entries.items():  # LRU order
            if not entry.pinned:
                return path
        return None

    def _remove(self, path: str) -> None:
        entry = self._entries.pop(path)
        self._resident -= entry.size
        if entry.pinned:
            self._pinned_bytes -= entry.size

    def evict(self, path: str) -> bool:
        """Explicitly drop a file (used by replication re-tiering)."""
        if path not in self._entries:
            return False
        self._remove(path)
        self.evictions += 1
        if self.on_evict:
            self.on_evict(path)
        return True

    def pin(self, path: str) -> bool:
        """Pin a resident file; returns False if absent."""
        entry = self._entries.get(path)
        if entry is None:
            return False
        if not entry.pinned:
            entry.pinned = True
            self._pinned_bytes += entry.size
        return True

    def unpin(self, path: str) -> bool:
        entry = self._entries.get(path)
        if entry is None:
            return False
        if entry.pinned:
            entry.pinned = False
            self._pinned_bytes -= entry.size
        return True

    def unpin_all(self) -> int:
        """Unpin everything (start of a replication round); returns count."""
        n = 0
        for entry in self._entries.values():
            if entry.pinned:
                entry.pinned = False
                n += 1
        self._pinned_bytes = 0
        return n

    def contents(self) -> list[str]:
        """Resident paths, LRU-first."""
        return list(self._entries)
