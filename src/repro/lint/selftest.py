"""Registry self-test: prove every rule still fires.

``repro lint --self-test`` parses each registered rule's embedded bad
snippet and asserts the rule reports exactly the expected lines, and
that the good snippet is clean.  A checker that silently stopped
matching (an ast refactor, a renamed node field) fails here in
milliseconds instead of letting violations through CI unseen.  The
registry's structural contract (every family populated, ≥3 rules per
checker family, unique names) is verified too.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .core import Linter
from .registry import all_rules, families

__all__ = ["SelfTestReport", "run_selftest"]

#: Checker families that must each carry at least this many rules.
_MIN_RULES = {"determinism": 3, "hooks": 3, "pools": 3}


@dataclass
class SelfTestReport:
    checked: int = 0
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        status = "ok" if self.ok else "FAILED"
        lines = [
            f"reprolint self-test: {status} "
            f"({self.checked} rules checked, {len(self.failures)} "
            "failures)"
        ]
        lines.extend(f"  {f}" for f in self.failures)
        return "\n".join(lines)


def run_selftest() -> SelfTestReport:
    report = SelfTestReport()
    grouped = families()
    for family, minimum in _MIN_RULES.items():
        have = len(grouped.get(family, ()))
        if have < minimum:
            report.failures.append(
                f"family {family!r} has {have} rules, expected >= {minimum}"
            )
    for r in all_rules():
        report.checked += 1
        if not r.bad_example or not r.bad_lines:
            if r.family == "pragma":
                continue  # meta rules are exercised by the driver tests
            report.failures.append(f"{r.name}: no bad_example registered")
            continue
        linter = Linter([r], respect_scope=False)
        bad = [
            d for d in linter.lint_source(r.bad_example, path=f"<{r.name}>")
            if d.rule == r.name
        ]
        got = tuple(sorted({d.line for d in bad}))
        if got != tuple(sorted(r.bad_lines)):
            report.failures.append(
                f"{r.name}: bad_example reported lines {got}, "
                f"expected {tuple(sorted(r.bad_lines))}"
            )
        if r.good_example:
            good = [
                d
                for d in linter.lint_source(
                    r.good_example, path=f"<{r.name}:good>"
                )
                if d.rule == r.name
            ]
            if good:
                report.failures.append(
                    f"{r.name}: good_example unexpectedly reported "
                    f"lines {sorted(d.line for d in good)}"
                )
    return report
