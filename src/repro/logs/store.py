"""Workload persistence: save/load sites and workloads on disk.

A saved workload is a directory of three plain files:

* ``site.json`` — the website model (pages, bundles, links, categories);
* ``training.log`` — the training log in Common Log Format;
* ``access.log`` — the evaluation trace re-emitted as CLF.

Everything round-trips through public formats, so saved workloads can
be consumed by external tools (or by this library's CLI) and real logs
can be dropped in place of the synthetic ones.
"""

from __future__ import annotations

import json
from pathlib import Path

from .clf import read_log, write_log
from .records import LogRecord
from .sessions import trace_from_records
from .site import Category, EmbeddedObject, Page, Website
from .workloads import Workload

__all__ = [
    "site_to_dict",
    "site_from_dict",
    "save_site",
    "load_site",
    "save_workload",
    "load_workload",
]

_FORMAT_VERSION = 1


def site_to_dict(site: Website) -> dict:
    """Serialize a website model to plain JSON-able data."""
    return {
        "format_version": _FORMAT_VERSION,
        "name": site.name,
        "pages": [
            {
                "path": p.path,
                "size": p.size,
                "dynamic": p.dynamic,
                "links": list(p.links),
                "embedded": [
                    {"path": o.path, "size": o.size} for o in p.embedded
                ],
            }
            for p in site.pages.values()
        ],
        "categories": [
            {
                "name": c.name,
                "entry_pages": list(c.entry_pages),
                "member_pages": list(c.member_pages),
            }
            for c in site.categories
        ],
    }


def site_from_dict(data: dict) -> Website:
    """Rebuild a website model from :func:`site_to_dict` output."""
    version = data.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported site format version: {version!r}")
    pages = [
        Page(
            path=p["path"],
            size=int(p["size"]),
            dynamic=bool(p.get("dynamic", False)),
            links=tuple(p.get("links", ())),
            embedded=tuple(
                EmbeddedObject(path=o["path"], size=int(o["size"]))
                for o in p.get("embedded", ())
            ),
        )
        for p in data["pages"]
    ]
    categories = [
        Category(
            name=c["name"],
            entry_pages=tuple(c["entry_pages"]),
            member_pages=tuple(c["member_pages"]),
        )
        for c in data.get("categories", ())
    ]
    return Website(pages, categories, name=data.get("name", "site"))


def save_site(site: Website, path: Path | str) -> None:
    Path(path).write_text(json.dumps(site_to_dict(site), indent=1))


def load_site(path: Path | str) -> Website:
    return site_from_dict(json.loads(Path(path).read_text()))


def save_workload(workload: Workload, directory: Path | str) -> Path:
    """Write a workload as ``site.json`` + two CLF logs; returns the dir."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    save_site(workload.site, directory / "site.json")
    with (directory / "training.log").open("w") as fp:
        write_log(fp, workload.training_records)
    eval_records = [
        LogRecord(host=r.client if r.client != "-" else f"c{r.conn_id}",
                  timestamp=r.arrival, method="GET", path=r.path,
                  protocol="HTTP/1.1", status=200, size=r.size)
        for r in workload.trace
    ]
    with (directory / "access.log").open("w") as fp:
        write_log(fp, eval_records)
    return directory


def load_workload(directory: Path | str, name: str | None = None) -> Workload:
    """Load a workload saved by :func:`save_workload`.

    CLF stores whole seconds, so sub-second arrival spacing is not
    preserved exactly; connection/request structure and sizes are.
    """
    directory = Path(directory)
    site = load_site(directory / "site.json")
    with (directory / "training.log").open() as fp:
        training = read_log(fp, strict=False)
    with (directory / "access.log").open() as fp:
        eval_records = read_log(fp, strict=False)
    if not eval_records:
        raise ValueError(f"no evaluation records in {directory}")
    trace = trace_from_records(eval_records,
                               name=f"{name or site.name}-eval")
    return Workload(name=name or site.name, site=site,
                    training_records=training, trace=trace)
