"""Micro-benchmarks for the web-log-mining substrate.

Not a paper figure — these keep the mining layer's costs visible
(training throughput, prediction latency, parser speed), which matters
because the paper's front end consults these structures per request.
"""


import pytest

from repro.logs import (
    format_line,
    page_sequences,
    parse_line,
    sessionize,
    synthetic_workload,
)
from repro.mining import (
    AprioriMiner,
    BundleMiner,
    DependencyGraph,
    PPMPredictor,
    PrefetchPredictor,
    RankTable,
    SequenceMiner,
    SequencePredictor,
)


@pytest.fixture(scope="module")
def training():
    w = synthetic_workload(scale=0.3)
    return w.training_records


@pytest.fixture(scope="module")
def sequences(training):
    return page_sequences(sessionize(training), min_length=2)


def test_clf_parse(benchmark, training):
    lines = [format_line(r) for r in training[:2000]]
    out = benchmark(lambda: [parse_line(l) for l in lines])
    assert len(out) == 2000


def test_sessionize(benchmark, training):
    sessions = benchmark(lambda: sessionize(training))
    assert len(sessions) > 100


def test_depgraph_training(benchmark, sequences):
    g = benchmark(lambda: DependencyGraph(order=2).train(sequences))
    assert g.num_contexts > 100


def test_depgraph_prediction(benchmark, sequences):
    g = DependencyGraph(order=2).train(sequences)
    contexts = [seq[:2] for seq in sequences if len(seq) >= 2][:500]

    def predict_all():
        return sum(1 for c in contexts if g.predict(c) is not None)

    hits = benchmark(predict_all)
    assert hits > 0


def test_prefetch_predictor_stream(benchmark, sequences):
    g = DependencyGraph(order=2).train(sequences)

    def stream():
        p = PrefetchPredictor(g, threshold=0.3, online_update=True)
        n = 0
        for conn, seq in enumerate(sequences[:300]):
            for page in seq:
                if p.observe(conn, page) is not None:
                    n += 1
            p.close(conn)
        return n

    fired = benchmark(stream)
    assert fired >= 0


def test_ppm_training(benchmark, sequences):
    p = benchmark(lambda: PPMPredictor(order=3).train(sequences))
    assert p.num_contexts > 100


def test_bundle_mining(benchmark, training):
    table = benchmark(lambda: BundleMiner().mine(training))
    assert len(table) > 10


def test_apriori(benchmark, sequences):
    miner = AprioriMiner(min_support=0.02, max_itemset_size=2)
    rules = benchmark(lambda: miner.rules(sequences[:400]))
    assert isinstance(rules, list)


def test_sequence_rules(benchmark, sequences):
    miner = SequenceMiner(max_length=3, min_support=2)
    p = benchmark(lambda: SequencePredictor(miner).train(sequences))
    assert p.num_rules > 10


def test_rank_table(benchmark, training):
    table = benchmark(lambda: RankTable.from_records(training))
    assert len(table) > 100
