"""Good: explicitly seeded generators threaded through."""

import random

import numpy as np


def pick(items, seed: int):
    rng = np.random.default_rng(seed)
    return items[rng.integers(len(items))]


def shuffle(items, seed: int):
    rng = random.Random(seed)
    out = list(items)
    rng.shuffle(out)
    return out
