"""Bad: the hook is clean, but a helper it calls mutates state."""


class Sweeper:
    def attach(self, cluster) -> None:
        self.cluster = cluster
        cluster.sim.on_event = self._on_event

    def _on_event(self, time: float) -> None:
        self._sweep()  # expect: hook-transitive

    def _sweep(self) -> None:
        self.cluster.trace = None
