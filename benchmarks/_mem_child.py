"""Subprocess worker for the peak-RSS memory benchmark.

Each invocation runs ONE pipeline in a fresh interpreter and prints a
single JSON line with its own ``ru_maxrss`` — peak resident set size is
a per-process high-water mark, so batch and streamed mining must not
share a process or the larger one poisons the other's reading.

Modes::

    _mem_child.py genlog <log-path> <preset> <scale> <stretch>
    _mem_child.py base                                 # import-only floor
    _mem_child.py batch  <log-path>                    # materialized mining
    _mem_child.py stream <log-path>                    # one-pass fold mining
    _mem_child.py genwl  <dir> <preset> <scale>        # save a workload dir
    _mem_child.py replay <dir> batch|stream            # end-to-end run_policy

The ``replay`` modes measure the full evaluation path: load a saved
workload (materialized lists vs lazy ``CLFSource`` +
``SidecarRequestSource``) and drive ``run_policy`` over it.  The policy
is ``lard`` — it never mines, so the measurement isolates the trace and
training-log footprint rather than re-measuring the mining pipelines
above.  Each replay child also prints its simulation report so the
parent can assert batch and streamed replays are field-for-field
identical *across processes*.

``stretch`` multiplies the log's time axis.  The synthetic presets
compress a huge request count into minutes of simulated time — shorter
than the 30-minute session timeout, so *no* session would ever retire
and streaming would degenerate to batch.  Real logs of this size span
hours to days; stretching restores that timescale (intra-session gaps
stay far below the timeout) without touching the request structure.

``base`` imports exactly what the measured modes import, so
``mode_rss - base_rss`` isolates the pipeline's own footprint from the
interpreter + import cost.
"""

from __future__ import annotations

import json
import resource
import sys
from pathlib import Path

# The same imports in every mode, so the `base` floor is honest.
from repro.core.system import mine_models, run_policy
from repro.logs.clf import CLFSource, ParseStats, read_log, write_log
from repro.logs.records import Trace
from repro.logs.site import Website
from repro.logs.store import load_workload, save_workload
from repro.logs.workloads import Workload, make_workload, training_log_records
from repro.mining.fold import mine_models_stream, models_fingerprint
from repro.sim.differential import report_fields


def _peak_rss_kb() -> int:
    # Linux reports ru_maxrss in kilobytes.
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def _emit(payload: dict) -> None:
    payload["peak_rss_kb"] = _peak_rss_kb()
    print(json.dumps(payload))


def mode_genlog(path: Path, preset: str, scale: float,
                stretch: float) -> None:
    records = training_log_records(preset, scale=scale)
    if stretch != 1.0 and records:
        t0 = records[0].timestamp
        records = [
            r.with_time(t0 + (r.timestamp - t0) * stretch) for r in records
        ]
    with path.open("w") as fp:
        n = write_log(fp, records)
    duration = records[-1].timestamp - records[0].timestamp if records else 0
    _emit({"mode": "genlog", "records": n,
           "duration_s": round(duration, 1)})


def mode_base() -> None:
    _emit({"mode": "base"})


def _batch_workload(path: Path) -> Workload:
    """A Workload around a materialized log — what the bench compares
    against.  Site/trace are unused by mining."""
    stats = ParseStats()
    with path.open() as fp:
        records = read_log(fp, strict=False, stats=stats)
    return Workload(name="membench", site=Website([], name="membench"),
                    training_records=records, trace=Trace([]))


def mode_batch(path: Path) -> None:
    workload = _batch_workload(path)
    models = mine_models(workload)
    _emit({
        "mode": "batch",
        "records": len(workload.training_records),
        "num_sessions": models.num_sessions,
        "fingerprint": models_fingerprint(models),
    })


def mode_stream(path: Path) -> None:
    source = CLFSource(path)
    models = mine_models_stream(source)
    _emit({
        "mode": "stream",
        "records": source.stats.parsed,
        "num_sessions": models.num_sessions,
        "fingerprint": models_fingerprint(models),
    })


def mode_genwl(directory: Path, preset: str, scale: float) -> None:
    workload = make_workload(preset, scale=scale)
    save_workload(workload, directory)
    _emit({"mode": "genwl", "requests": len(workload.trace),
           "records": len(workload.training_records)})


def mode_replay(directory: Path, variant: str) -> None:
    if variant not in ("batch", "stream"):
        raise SystemExit(f"unknown replay variant {variant!r}")
    workload = load_workload(directory, stream=(variant == "stream"))
    result = run_policy(workload, "lard")
    _emit({
        "mode": f"replay-{variant}",
        "requests": len(workload.trace),
        "report": report_fields(result),
    })


def main(argv: list[str]) -> int:
    mode = argv[0]
    if mode == "genlog":
        mode_genlog(Path(argv[1]), argv[2], float(argv[3]), float(argv[4]))
    elif mode == "base":
        mode_base()
    elif mode == "batch":
        mode_batch(Path(argv[1]))
    elif mode == "stream":
        mode_stream(Path(argv[1]))
    elif mode == "genwl":
        mode_genwl(Path(argv[1]), argv[2], float(argv[3]))
    elif mode == "replay":
        mode_replay(Path(argv[1]), argv[2])
    else:
        raise SystemExit(f"unknown mode {mode!r}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
