#!/usr/bin/env python3
"""Capacity planning: backend count, memory, and power trade-offs.

A downstream operator's view of the library: given a site and its logs,

* how does each policy's throughput scale from 6 to 16 backends
  (the paper's consistency claim)?
* how much memory does the cluster need before LARD and PRORD converge
  (Fig. 8's question)?
* what does the power-management extension save on a bursty day?

Run:  python examples/capacity_planning.py
"""

from repro.core import SimulationParams, run_policy
from repro.experiments import QUICK, loaded_workload
from repro.logs import synthetic_workload
from repro.policies import WRRPolicy
from repro.sim import ClusterSimulator


def backend_scaling() -> None:
    print("=== throughput vs backend count (synthetic, 30% memory) ===")
    workload = loaded_workload("synthetic", QUICK)
    print(f"{'backends':>9s} {'lard':>8s} {'prord':>8s} {'gain':>7s}")
    for n in (6, 8, 12, 16):
        params = SimulationParams(n_backends=n)
        lard = run_policy(workload, "lard", params, cache_fraction=0.3,
                          window_s=QUICK.duration_s)
        prord = run_policy(workload, "prord", params, cache_fraction=0.3,
                           window_s=QUICK.duration_s)
        gain = prord.throughput_rps / max(lard.throughput_rps, 1e-9) - 1
        print(f"{n:9d} {lard.throughput_rps:8.0f} "
              f"{prord.throughput_rps:8.0f} {gain:+7.1%}")


def memory_sizing() -> None:
    print("\n=== hit rate vs cluster memory (cs-department) ===")
    workload = loaded_workload("cs-department", QUICK)
    params = SimulationParams(n_backends=8)
    print(f"{'memory':>7s} {'lard hit':>9s} {'prord hit':>10s}")
    for fraction in (0.05, 0.1, 0.3, 0.6):
        lard = run_policy(workload, "lard", params,
                          cache_fraction=fraction,
                          window_s=QUICK.duration_s)
        prord = run_policy(workload, "prord", params,
                           cache_fraction=fraction,
                           window_s=QUICK.duration_s)
        print(f"{fraction:7.0%} {lard.hit_rate:9.1%} {prord.hit_rate:10.1%}")


def closed_loop_capacity() -> None:
    print("\n=== closed-loop capacity (synthetic, 30% memory) ===")
    from repro.logs import TrafficSpec, synthetic_workload
    from repro.sim import run_closed_loop
    from repro.core import build_policy, mine_components

    workload = synthetic_workload(scale=0.02)
    params = SimulationParams(
        n_backends=8,
        cache_bytes=int(0.3 * workload.site_bytes / 8),
    )
    spec = TrafficSpec(think_time_mean=0.25, mean_session_pages=5,
                       max_session_pages=10)
    print(f"{'sessions':>9s} {'lard':>8s} {'prord':>8s}")
    for concurrency in (100, 400, 1200):
        row = [concurrency]
        for name in ("lard", "prord"):
            mining = (mine_components(workload, params)
                      if name == "prord" else None)
            policy, replicator = build_policy(name, mining, params)
            r = run_closed_loop(workload.site, policy, params,
                                concurrency=concurrency, duration_s=4.0,
                                spec=spec, replicator=replicator)
            row.append(r.throughput_rps)
        print(f"{row[0]:9d} {row[1]:8.0f} {row[2]:8.0f}")


def power_savings() -> None:
    print("\n=== power-management extension (bursty low traffic) ===")
    workload = synthetic_workload(scale=0.05)
    for managed in (False, True):
        params = SimulationParams(
            n_backends=8,
            cache_bytes=1 << 22,
            power_management=managed,
            hibernate_after_s=2.0,
            wakeup_latency_s=0.5,
        )
        cluster = ClusterSimulator(workload.trace, WRRPolicy(), params,
                                   warmup_fraction=0.0)
        result = cluster.run()
        label = "managed" if managed else "always-on"
        print(f"  {label:>10s}: mean power {result.power.mean_power:.1%} "
              f"of peak, {result.power.wakeups} wake-ups, "
              f"p95 response {result.report.p95_response_s * 1e3:.1f} ms")


def main() -> None:
    backend_scaling()
    memory_sizing()
    closed_loop_capacity()
    power_savings()


if __name__ == "__main__":
    main()
