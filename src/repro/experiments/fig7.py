"""Fig. 7 — Throughput comparison: WRR / LARD / Ext-LARD-PHTTP / PRORD.

The paper reports PRORD beating LARD by 10–45% across the three traces
(with ~30% of the site's data fitting in the cluster's memory), and
notes the results are consistent for 6–16 backends.

Shape targets:
* ordering PRORD > Ext-LARD-PHTTP ≥ LARD > WRR,
* PRORD/LARD gain roughly in the 10–45% band,
* ordering stable across backend counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from .common import QUICK, ExperimentScale, format_table
from .runner import Cell, run_grid

__all__ = ["Fig7Row", "run_fig7", "run_fig7_backend_sweep", "main"]

WORKLOADS = ("cs-department", "worldcup", "synthetic")
POLICIES = ("wrr", "lard", "ext-lard-phttp", "prord")


@dataclass(frozen=True, slots=True)
class Fig7Row:
    workload: str
    policy: str
    throughput_rps: float
    mean_response_ms: float
    hit_rate: float


def run_fig7(
    scale: ExperimentScale = QUICK,
    workloads: tuple[str, ...] = WORKLOADS,
    *,
    jobs: int = 0,
    audit: bool = False,
    model_cache=None,
) -> list[Fig7Row]:
    """Regenerate the Fig. 7 series (per-trace policy throughput)."""
    cells = [Cell(workload=w, policy=p) for w in workloads for p in POLICIES]
    return [
        Fig7Row(
            workload=cr.cell.workload,
            policy=cr.cell.policy,
            throughput_rps=cr.result.throughput_rps,
            mean_response_ms=cr.result.mean_response_s * 1e3,
            hit_rate=cr.result.hit_rate,
        )
        for cr in run_grid(cells, scale, jobs=jobs, audit=audit,
                           model_cache=model_cache)
    ]


def run_fig7_backend_sweep(
    scale: ExperimentScale = QUICK,
    backend_counts: tuple[int, ...] = (6, 8, 12, 16),
    workload_name: str = "synthetic",
    *,
    jobs: int = 0,
    audit: bool = False,
    model_cache=None,
) -> dict[int, dict[str, float]]:
    """The paper's 6–16 backend consistency check (one workload)."""
    cells = [
        Cell(workload=workload_name, policy=p, n_backends=n)
        for n in backend_counts for p in POLICIES
    ]
    out: dict[int, dict[str, float]] = {}
    for cr in run_grid(cells, scale, jobs=jobs, audit=audit,
                       model_cache=model_cache):
        out.setdefault(cr.result.n_backends, {})[cr.cell.policy] = (
            cr.result.throughput_rps)
    return out


def main(scale: ExperimentScale = QUICK, *, jobs: int = 0,
         audit: bool = False, model_cache=None) -> str:
    from .charts import grouped_bar_chart
    rows = run_fig7(scale, jobs=jobs, audit=audit,
                    model_cache=model_cache)
    table = format_table(
        "Fig. 7 - Throughput Comparison "
        f"({scale.n_backends} backends, {scale.cache_fraction:.0%} of site "
        "in cluster memory)",
        ["trace", "policy", "thr (rps)", "resp (ms)", "hit"],
        [[r.workload, r.policy, f"{r.throughput_rps:.0f}",
          f"{r.mean_response_ms:.1f}", f"{r.hit_rate:.1%}"] for r in rows],
    )
    print(table)
    by_wl: dict[str, dict[str, Fig7Row]] = {}
    for r in rows:
        by_wl.setdefault(r.workload, {})[r.policy] = r
    chart = grouped_bar_chart(
        "throughput (rps)",
        {w: {p: rr.throughput_rps for p, rr in policies.items()}
         for w, policies in by_wl.items()},
    )
    print(chart)
    table += "\n" + chart
    for wname, policies in by_wl.items():
        g = policies["prord"].throughput_rps / max(
            policies["lard"].throughput_rps, 1e-9) - 1
        line = f"PRORD over LARD on {wname}: {g:+.1%}"
        print(line)
        table += "\n" + line
    return table


if __name__ == "__main__":  # pragma: no cover
    main()
