"""Bad: unseeded / global-state randomness."""

import os
import random
import uuid

import numpy as np


def pick(items):
    return random.choice(items)  # expect: unseeded-random


def jitter() -> float:
    return np.random.rand()  # expect: unseeded-random


def reseed() -> None:
    np.random.seed(0)  # expect: unseeded-random


def token() -> str:
    return uuid.uuid4().hex  # expect: unseeded-random


def entropy() -> bytes:
    return os.urandom(8)  # expect: unseeded-random
