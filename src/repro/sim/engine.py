"""Discrete-event simulation engine.

A minimal, deterministic event core: a binary-heap calendar of
``(time, sequence, callback, arg)`` entries.  Sequence numbers break
ties so simultaneous events fire in scheduling order, which keeps every
run bit-reproducible — a property the regression tests rely on.

The hot loop is deliberately allocation-light: :meth:`Simulator.run`
binds the heap, ``heappop`` and the observation hook to locals and pops
each entry exactly once (peeking only through the popped tuple), and
callers that stream bounded lookahead windows into the calendar (the
cluster's arrival pump) can pre-reserve sequence-number blocks so late
pushes keep the exact tie-break order an eager up-front schedule would
have produced.

Calendar entries carry an optional ``arg`` delivered to the callback.
This is the struct-of-arrays hook: instead of allocating a per-request
record (or a fresh bound method) per event, hot-path components keep
one long-lived bound method per *stage* and pass an integer slot index
into parallel state arrays (see :mod:`repro.sim.soa`), so steady-state
event traffic allocates nothing.

:class:`Resource` models a single-server queueing station (CPU, disk,
NIC) with priority classes: demand work preempts *queued* (never
in-service) prefetch work, matching how a real server would schedule
low-priority readahead.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable

__all__ = ["Simulator", "Resource", "PRIORITY_DEMAND", "PRIORITY_PREFETCH"]

#: Priority classes for :class:`Resource` jobs (lower value = served first).
PRIORITY_DEMAND = 0
PRIORITY_PREFETCH = 1


class Simulator:
    """The event calendar and clock.

    All times are in **seconds** (floats); component cost models convert
    from the paper's µs/ms constants at the edges.
    """

    #: True on sharded subclasses (:class:`repro.sim.shard.
    #: ShardedSimulator`).  Components that push calendar entries
    #: directly into ``_heap`` (the Resource fast paths) must check this
    #: and fall back to :meth:`schedule_at`, which classifies the event
    #: to its owner's shard.
    sharded = False

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[..., None], object]] = []
        self._seq = 0
        self.now: float = 0.0
        self._events_processed = 0
        self._high_water = 0
        #: Optional observation hook fired after every processed event
        #: with the event's time.  Pure observation — the hook must not
        #: schedule events or mutate state, so attaching one (the
        #: simulation auditor does) cannot perturb a run.  Install hooks
        #: *before* calling :meth:`run`: the loop binds the hook once on
        #: entry.
        self.on_event: Callable[[float], None] | None = None

    def schedule_at(
        self, time: float, fn: Callable[..., None], arg: object = None
    ) -> None:
        """Run ``fn`` when the clock reaches ``time``.

        ``arg`` (optional) is delivered as ``fn(arg)``; ``None`` means
        call ``fn()`` — callbacks that genuinely want to receive ``None``
        must close over it instead.
        """
        if time < self.now:
            raise ValueError(
                f"cannot schedule in the past: {time} < now {self.now}"
            )
        seq = self._seq
        self._seq = seq + 1
        heap = self._heap
        heapq.heappush(heap, (time, seq, fn, arg))
        if len(heap) > self._high_water:
            self._high_water = len(heap)

    def schedule(
        self, delay: float, fn: Callable[..., None], arg: object = None
    ) -> None:
        """Run ``fn`` after ``delay`` seconds."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        self.schedule_at(self.now + delay, fn, arg)

    # -- reserved sequence blocks (streaming schedulers) ---------------------

    def reserve_sequences(self, n: int) -> int:
        """Claim a block of ``n`` consecutive sequence numbers.

        Returns the first number of the block.  A streaming scheduler
        that knows its events' relative order up front (the arrival
        pump) reserves the block once and pushes each event with its
        pre-assigned number via :meth:`schedule_at_reserved`; events
        scheduled later by anyone else draw numbers *after* the block,
        so the global ``(time, seq)`` order is exactly what eagerly
        scheduling the whole block up front would have produced.
        """
        if n < 0:
            raise ValueError(f"cannot reserve {n} sequence numbers")
        start = self._seq
        self._seq = start + n
        return start

    def schedule_at_reserved(
        self,
        time: float,
        seq: int,
        fn: Callable[..., None],
        arg: object = None,
    ) -> None:
        """Push an event carrying a pre-reserved sequence number."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule in the past: {time} < now {self.now}"
            )
        heap = self._heap
        heapq.heappush(heap, (time, seq, fn, arg))
        if len(heap) > self._high_water:
            self._high_water = len(heap)

    # -- the loop ------------------------------------------------------------

    def run(self, until: float | None = None) -> None:
        """Process events until the calendar empties (or ``until``).

        The loop pops each calendar entry exactly once; when ``until``
        cuts the run short, the one overshooting entry is pushed back.
        The observation hook is bound on entry — install ``on_event``
        before calling.
        """
        heap = self._heap
        pop = heapq.heappop
        on_event = self.on_event
        if until is None and on_event is None:
            # Fast path: full drain, no observer.  Nothing can read
            # ``events_processed`` mid-drain (observers are the only
            # readers inside a run), so the counter rides a local and
            # is flushed once — even if a callback raises.
            n = 0
            try:
                while heap:
                    time, _, fn, arg = pop(heap)
                    self.now = time
                    n += 1
                    if arg is None:
                        fn()
                    else:
                        fn(arg)
            finally:
                self._events_processed += n
        elif until is None:
            # Observers may read ``events_processed`` from inside the
            # hook (the telemetry timeline does), so the counter is kept
            # on the instance, not in a loop local.
            while heap:
                time, _, fn, arg = pop(heap)
                self.now = time
                self._events_processed += 1
                if arg is None:
                    fn()
                else:
                    fn(arg)
                on_event(time)
        else:
            while heap:
                entry = pop(heap)
                time = entry[0]
                if time > until:
                    heapq.heappush(heap, entry)
                    self.now = until
                    return
                self.now = time
                self._events_processed += 1
                arg = entry[3]
                if arg is None:
                    entry[2]()
                else:
                    entry[2](arg)
                if on_event is not None:
                    on_event(time)
            self.now = max(self.now, until)

    def step(self) -> bool:
        """Process one event; returns False when the calendar is empty."""
        if not self._heap:
            return False
        time, _, fn, arg = heapq.heappop(self._heap)
        self.now = time
        self._events_processed += 1
        if arg is None:
            fn()
        else:
            fn(arg)
        if self.on_event is not None:
            self.on_event(time)
        return True

    @property
    def pending_events(self) -> int:
        return len(self._heap)

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def calendar_high_water(self) -> int:
        """Peak calendar size so far — the engine's memory-footprint
        proxy.  With the streaming arrival pump this stays bounded by
        the lookahead window plus in-flight work, not the trace length;
        the core benchmark asserts exactly that."""
        return self._high_water


@dataclass(slots=True)
class _Job:
    service_time: float
    done: Callable[..., None]
    priority: int
    seq: int
    arg: object = None
    started: bool = False

    def sort_key(self) -> tuple[int, int]:
        return (self.priority, self.seq)


class Resource:
    """A single-server FIFO station with priority classes.

    Jobs are served one at a time; among the queued jobs the lowest
    ``(priority, arrival-order)`` goes next.  Jobs already in service are
    never preempted.  Utilisation bookkeeping feeds the power model and
    the stats layer.
    """

    def __init__(self, sim: Simulator, name: str = "resource") -> None:
        self.sim = sim
        self.name = name
        self._queue: list[tuple[tuple[int, int], _Job]] = []
        self._busy = False
        self._seq = 0
        self.busy_time: float = 0.0
        self.jobs_served = 0
        self._service_started = 0.0
        # Completion target of the in-service job.  Kept as two plain
        # slots instead of a _Job record: an idle-station submit — the
        # common case — then allocates nothing at all.
        self._cur_done: Callable[..., None] | None = None
        self._cur_arg: object = None
        # Pre-bound completion callback: one bound-method object reused
        # for every job instead of a fresh closure per service.
        self._finish_cb = self._finish

    def submit(
        self,
        service_time: float,
        done: Callable[..., None],
        *,
        priority: int = PRIORITY_DEMAND,
        arg: object = None,
    ) -> _Job | None:
        """Enqueue a job; ``done`` fires when its service completes
        (as ``done(arg)`` when ``arg`` is not ``None``).

        Returns a job handle usable with :meth:`promote` when the job
        had to queue; a job started immediately (idle station) returns
        ``None`` — an in-service job can never be promoted anyway.
        """
        if service_time < 0:
            raise ValueError(f"negative service time: {service_time}")
        if self._busy:
            seq = self._seq
            self._seq = seq + 1
            job = _Job(service_time, done, priority, seq, arg)
            heapq.heappush(self._queue, ((priority, seq), job))
            return job
        # An idle station never holds queued jobs, so the new job is the
        # head by construction — start it with no _Job record and no
        # queue traffic.  The completion event is pushed inline
        # (``schedule_at`` sans the cannot-schedule-in-the-past check:
        # ``now + service_time >= now`` by construction).
        self._busy = True
        self._cur_done = done
        self._cur_arg = arg
        sim = self.sim
        self._service_started = now = sim.now
        if sim.sharded:
            # Sharded calendars classify by callback owner; go through
            # schedule_at so the completion lands on this resource's
            # shard.  Same sequence draw, same (time, seq) key.
            sim.schedule_at(now + service_time, self._finish_cb)
            return None
        seq = sim._seq
        sim._seq = seq + 1
        heap = sim._heap
        heapq.heappush(heap, (now + service_time, seq, self._finish_cb, None))
        if len(heap) > sim._high_water:
            sim._high_water = len(heap)
        return None

    def promote(
        self, job: _Job | None, priority: int = PRIORITY_DEMAND
    ) -> bool:
        """Raise a *queued* job's priority (e.g. a prefetch read that a
        demand request coalesced onto).  No effect once service started
        (``None`` — the handle of a job that started on submit — is
        accepted and refused) or when the job already has equal/higher
        priority."""
        if job is None or job.started or priority >= job.priority:
            return False
        job.priority = priority
        # Lazy rebuild: cheap relative to event processing and rare.
        self._queue = [(j.sort_key(), j) for _, j in self._queue]
        heapq.heapify(self._queue)
        return True

    def _finish(self) -> None:
        sim = self.sim
        self.busy_time += sim.now - self._service_started
        self.jobs_served += 1
        done = self._cur_done
        arg = self._cur_arg
        queue = self._queue
        # Start the next job before the completion callback so a
        # callback that re-submits cannot starve the queue head.
        if queue:
            _, job = heapq.heappop(queue)
            job.started = True
            self._cur_done = job.done
            self._cur_arg = job.arg
            self._service_started = now = sim.now
            if sim.sharded:
                sim.schedule_at(now + job.service_time, self._finish_cb)
            else:
                seq = sim._seq
                sim._seq = seq + 1
                heap = sim._heap
                heapq.heappush(
                    heap, (now + job.service_time, seq, self._finish_cb, None)
                )
                if len(heap) > sim._high_water:
                    sim._high_water = len(heap)
        else:
            self._busy = False
            self._cur_done = None
            self._cur_arg = None
        if arg is None:
            done()  # type: ignore[misc]
        else:
            done(arg)  # type: ignore[misc]

    @property
    def queue_length(self) -> int:
        """Jobs waiting (excluding the one in service)."""
        return len(self._queue)

    @property
    def busy(self) -> bool:
        return self._busy

    @property
    def cumulative_busy_s(self) -> float:
        """Total busy seconds so far, including the in-service span.

        Monotone non-decreasing in simulated time, which lets samplers
        (the telemetry timeline) difference consecutive snapshots to get
        exact per-window busy time.  This is the one place the
        in-service-span accounting lives; :meth:`busy_fraction` and
        :meth:`utilization` are views over it.
        """
        busy = self.busy_time
        if self._busy:
            busy += self.sim.now - self._service_started
        return busy

    def busy_fraction(self, elapsed: float) -> float:
        """Raw busy time over ``elapsed``, **unclamped**.

        A single-server station can never be busy for longer than the
        elapsed wall-clock, so a value above 1.0 is an accounting bug —
        the simulation auditor asserts exactly that.  Reports use the
        clamped :meth:`utilization` view.
        """
        if elapsed <= 0:
            return 0.0
        return self.cumulative_busy_s / elapsed

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` spent serving (current job included)."""
        return min(1.0, self.busy_fraction(elapsed))
