"""Tests for the core record/trace types."""

import pytest
from hypothesis import given, strategies as st

from repro.logs import LogRecord, Request, Trace


def req(t, conn=0, path="/a", size=100, **kw):
    return Request(arrival=t, conn_id=conn, path=path, size=size, **kw)


class TestLogRecord:
    def test_success_codes(self):
        base = dict(host="h", timestamp=0.0, method="GET", path="/",
                    protocol="HTTP/1.1")
        assert LogRecord(status=200, size=1, **base).is_success()
        assert LogRecord(status=304, size=0, **base).is_success()
        assert not LogRecord(status=404, size=0, **base).is_success()
        assert not LogRecord(status=500, size=0, **base).is_success()

    def test_with_time(self):
        base = LogRecord(host="h", timestamp=1.0, method="GET", path="/",
                         protocol="HTTP/1.1", status=200, size=1)
        shifted = base.with_time(9.0)
        assert shifted.timestamp == 9.0
        assert shifted.path == base.path


class TestRequest:
    def test_main_page(self):
        assert req(0.0).is_main_page()
        assert not req(0.0, is_embedded=True, parent="/a").is_main_page()


class TestTrace:
    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            Trace([req(2.0), req(1.0)])

    def test_catalog_takes_max_size(self):
        t = Trace([req(0.0, path="/a", size=10), req(1.0, path="/a", size=30)])
        assert t.catalog["/a"] == 30
        assert t.total_bytes == 30

    def test_duration_and_len(self):
        t = Trace([req(1.0), req(4.0, conn=1, path="/b")])
        assert t.duration == 3.0
        assert len(t) == 2
        assert t[1].path == "/b"

    def test_empty_trace(self):
        t = Trace([])
        assert t.duration == 0.0
        assert len(t) == 0
        assert t.total_bytes == 0

    def test_connection_ids_order(self):
        t = Trace([req(0.0, conn=5), req(1.0, conn=2), req(2.0, conn=5)])
        assert t.connection_ids() == [5, 2]

    def test_head(self):
        t = Trace([req(float(i), conn=i) for i in range(10)])
        assert len(t.head(3)) == 3

    def test_scaled_compresses_gaps(self):
        t = Trace([req(10.0), req(14.0, conn=1)])
        half = t.scaled(0.5)
        assert half.duration == pytest.approx(2.0)
        assert half[0].arrival == pytest.approx(10.0)

    def test_scaled_rejects_nonpositive(self):
        t = Trace([req(0.0)])
        with pytest.raises(ValueError):
            t.scaled(0.0)

    def test_scaled_empty(self):
        assert len(Trace([]).scaled(2.0)) == 0

    def test_merge_sorts(self):
        a = Trace([req(0.0, conn=0), req(5.0, conn=0)])
        b = Trace([req(2.0, conn=1)])
        m = Trace.merge([a, b])
        assert [r.arrival for r in m] == [0.0, 2.0, 5.0]

    @given(st.lists(st.floats(min_value=0, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=50))
    def test_property_sorted_arrivals_accepted(self, times):
        times.sort()
        t = Trace([req(x, conn=i) for i, x in enumerate(times)])
        assert t.duration == pytest.approx(times[-1] - times[0])

    @given(st.floats(min_value=0.01, max_value=100.0),
           st.lists(st.floats(min_value=0, max_value=1e4, allow_nan=False),
                    min_size=2, max_size=20))
    def test_property_scaling_preserves_order_and_count(self, factor, times):
        times.sort()
        t = Trace([req(x, conn=i) for i, x in enumerate(times)])
        s = t.scaled(factor)
        assert len(s) == len(t)
        arr = [r.arrival for r in s]
        assert arr == sorted(arr)
