"""Experiment-grid runner benchmark — emits ``BENCH_experiments.json``.

Runs a small fig7-style grid (three workloads × four policies) through
:func:`repro.experiments.run_grid` and writes the per-cell wall-clock /
throughput / hit-rate artifact consumed by CI.  Set the
``BENCH_EXPERIMENTS_JSON`` environment variable to redirect the
artifact (default: repo root).
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.experiments import Cell, format_table, run_grid, write_bench_json

from conftest import BENCH, run_once

WORKLOADS = ("synthetic", "cs-department", "worldcup")
POLICIES = ("wrr", "lard", "ext-lard-phttp", "prord")

ARTIFACT = Path(os.environ.get(
    "BENCH_EXPERIMENTS_JSON",
    Path(__file__).resolve().parent.parent / "BENCH_experiments.json",
))


def test_experiment_grid(benchmark):
    cells = [Cell(workload=w, policy=p)
             for w in WORKLOADS for p in POLICIES]
    results = run_once(benchmark, lambda: run_grid(cells, BENCH))
    assert [r.cell for r in results] == cells
    assert all(r.result.report.completed > 0 for r in results)
    path = write_bench_json(results, ARTIFACT, label=f"grid-{BENCH.name}")
    print()
    print(format_table(
        "Experiment grid (per-cell wall clock)",
        ["workload", "policy", "wall (s)", "thr (rps)", "hit"],
        [[r.cell.workload, r.cell.policy, f"{r.wall_clock_s:.2f}",
          f"{r.result.throughput_rps:.0f}", f"{r.result.hit_rate:.1%}"]
         for r in results]))
    print(f"[wrote {path}]")
