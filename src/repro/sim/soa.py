"""Struct-of-arrays storage for in-flight requests.

One :class:`FlowTable` per cluster holds every per-request field the
hot path touches as parallel arrays indexed by a small integer *slot*.
Calendar entries carry the slot index (the engine's ``arg`` channel)
instead of a per-request record, and every stage callback is one
long-lived bound method — so the steady-state demand path allocates no
objects at all: slots are recycled through a free list.

The table is shared between the cluster (front-end fields: the original
request, target server, post-frontend latency, injection callback) and
its backend servers (service fields: path, size, flags, precomputed
service times).  A standalone :class:`~repro.sim.server.BackendServer`
owns a private table.

Slot lifecycle: allocated at arrival (``alloc``), carried through the
frontend → deliver → CPU → cache/disk → transmit stages, and released
by the finish target (``release``), which clears object references so
a recycled slot never pins dead requests.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..logs.records import Request
    from .cluster import CompletionCallback
    from .server import BackendServer

__all__ = ["FlowTable"]

#: Slots added per growth step — large enough that growth is rare,
#: small enough that an idle cluster stays tiny.
_GROW = 256

#: Completion target stored per slot: ``finish(slot, server_id, hit)``.
FinishCallback = Callable[[int, int, bool], None]


class FlowTable:
    """Parallel per-request state arrays plus a slot free list."""

    __slots__ = (
        "path", "size", "dynamic", "hit", "tx_s", "disk_s", "finish",
        "req", "server", "latency", "on_complete", "user_done", "free",
    )

    def __init__(self) -> None:
        # -- service fields (written by whoever allocates the slot) ----
        self.path: list[str | None] = []
        self.size: list[int] = []
        self.dynamic: list[bool] = []
        self.hit: list[bool] = []
        #: precomputed ``params.transmit_s(size)`` for the slot
        self.tx_s: list[float] = []
        #: precomputed ``params.disk_service_s(size)`` for the slot
        self.disk_s: list[float] = []
        #: completion target: ``finish(slot, server_id, hit)``
        self.finish: list[FinishCallback | None] = []
        # -- cluster fields (trace / injection path only) --------------
        self.req: list["Request | None"] = []
        self.server: list["BackendServer | None"] = []
        self.latency: list[float] = []
        self.on_complete: list["CompletionCallback | None"] = []
        # -- generic server.handle() path only -------------------------
        self.user_done: list[Callable[[int, bool], None] | None] = []
        #: recycled slot indices (LIFO — deterministic reuse order)
        self.free: list[int] = []

    def alloc(self) -> int:
        """Claim a slot (recycled when possible)."""
        free = self.free
        if free:
            return free.pop()
        return self._grow()

    def _grow(self) -> int:
        base = len(self.path)
        n = _GROW
        self.path.extend([None] * n)
        self.size.extend([0] * n)
        self.dynamic.extend([False] * n)
        self.hit.extend([False] * n)
        self.tx_s.extend([0.0] * n)
        self.disk_s.extend([0.0] * n)
        self.finish.extend([None] * n)
        self.req.extend([None] * n)
        self.server.extend([None] * n)
        self.latency.extend([0.0] * n)
        self.on_complete.extend([None] * n)
        self.user_done.extend([None] * n)
        # Hand out ``base`` now; queue the rest so pops come in
        # ascending slot order.
        self.free.extend(range(base + n - 1, base, -1))
        return base

    def release(self, slot: int) -> None:
        """Return a slot to the free list, dropping object references."""
        self.path[slot] = None
        self.finish[slot] = None
        self.req[slot] = None
        self.server[slot] = None
        self.on_complete[slot] = None
        self.user_done[slot] = None
        self.free.append(slot)

    @property
    def capacity(self) -> int:
        return len(self.path)

    @property
    def in_flight(self) -> int:
        """Slots currently live (capacity minus free)."""
        return len(self.path) - len(self.free)
