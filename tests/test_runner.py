"""Tests for the declarative experiment-grid runner.

The two structural guarantees under test (DESIGN.md §runner):

1. a process-pool run is *bit-identical* to the serial loop — same
   grid, same seeds, same reports;
2. mining happens exactly once per distinct ``workload_key`` in the
   grid, no matter how many cells (policies, backend counts, cache
   fractions) share it.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core import SimulationParams, mine_models
from repro.experiments import (
    Cell,
    ExperimentScale,
    bench_payload,
    loaded_workload,
    run_grid,
    write_bench_json,
)
from repro.experiments import runner as runner_mod

MICRO = ExperimentScale(
    name="micro",
    duration_s=2.0,
    session_rates={"synthetic": 200.0, "cs-department": 180.0,
                   "worldcup": 160.0},
    n_backends=4,
    think_time_mean=0.15,
    max_session_pages=6,
)

#: A small fig7-style grid: one workload, the four headline policies.
GRID = [Cell(workload="synthetic", policy=p)
        for p in ("wrr", "lard", "ext-lard-phttp", "prord")]


def report_fields(result):
    """Every scalar on the report, for exact equality comparison."""
    return dataclasses.asdict(result.report)


class TestSerialParallelEquality:
    def test_parallel_identical_to_serial(self):
        serial = run_grid(GRID, MICRO, jobs=0)
        parallel = run_grid(GRID, MICRO, jobs=2)
        assert [r.cell for r in serial] == GRID
        assert [r.cell for r in parallel] == GRID
        for s, p in zip(serial, parallel):
            assert report_fields(s.result) == report_fields(p.result)
            assert s.cache_fraction == p.cache_fraction

    def test_jobs_one_is_serial(self):
        a = run_grid(GRID[:2], MICRO, jobs=0)
        b = run_grid(GRID[:2], MICRO, jobs=1)
        for s, p in zip(a, b):
            assert report_fields(s.result) == report_fields(p.result)


class TestMiningSharing:
    def test_one_mining_pass_per_workload_key(self, monkeypatch):
        calls = []

        def counting_mine(workload, params=None, **kwargs):
            calls.append(workload.name)
            return mine_models(workload, params)

        monkeypatch.setattr(runner_mod, "cached_mine_models", counting_mine)
        cells = [
            Cell(workload="synthetic", policy="prord"),
            Cell(workload="synthetic", policy="lard-bundle"),
            Cell(workload="synthetic", policy="prord", n_backends=2),
            Cell(workload="synthetic", policy="prord", cache_fraction=0.5),
        ]
        results = run_grid(cells, MICRO, jobs=0)
        assert calls == ["synthetic"]
        assert all(r.result.report.completed > 0 for r in results)

    def test_no_mining_for_locality_only_policies(self, monkeypatch):
        monkeypatch.setattr(
            runner_mod, "cached_mine_models",
            lambda *a, **k: pytest.fail("mined for a non-mining policy"))
        results = run_grid(
            [Cell(workload="synthetic", policy="wrr"),
             Cell(workload="synthetic", policy="lard")],
            MICRO, jobs=0)
        assert len(results) == 2

    def test_distinct_seed_offsets_mine_separately(self, monkeypatch):
        calls = []

        def counting_mine(workload, params=None, **kwargs):
            calls.append(workload.name)
            return mine_models(workload, params)

        monkeypatch.setattr(runner_mod, "cached_mine_models", counting_mine)
        run_grid(
            [Cell(workload="synthetic", policy="prord"),
             Cell(workload="synthetic", policy="prord", seed_offset=1)],
            MICRO, jobs=0)
        assert calls == ["synthetic", "synthetic"]


class TestCellResolution:
    def test_n_backends_override(self):
        results = run_grid(
            [Cell(workload="synthetic", policy="lard", n_backends=2)],
            MICRO, jobs=0)
        assert results[0].result.n_backends == 2

    def test_cache_fraction_default_and_override(self):
        default, half = run_grid(
            [Cell(workload="synthetic", policy="lard"),
             Cell(workload="synthetic", policy="lard", cache_fraction=0.5)],
            MICRO, jobs=0)
        assert default.cache_fraction == MICRO.cache_fraction
        assert half.cache_fraction == 0.5

    def test_supplied_workload_bypasses_loader(self):
        workload = loaded_workload("synthetic", MICRO)
        results = run_grid(
            [Cell(workload="synthetic", policy="lard")],
            MICRO, jobs=0, workloads={"synthetic": workload})
        assert results[0].result.report.completed > 0

    def test_supplied_workload_rejects_seed_offset(self):
        workload = loaded_workload("synthetic", MICRO)
        with pytest.raises(ValueError, match="seed_offset"):
            run_grid(
                [Cell(workload="synthetic", policy="lard", seed_offset=1)],
                MICRO, jobs=0, workloads={"synthetic": workload})

    def test_empty_grid(self):
        assert run_grid([], MICRO, jobs=4) == []

    def test_base_params_respected(self):
        params = SimulationParams(n_backends=3)
        results = run_grid(
            [Cell(workload="synthetic", policy="lard")],
            MICRO, jobs=0, params=params)
        assert results[0].result.n_backends == 3


class TestBenchArtifact:
    def test_payload_shape(self):
        results = run_grid(GRID[:2], MICRO, jobs=0)
        payload = bench_payload(results, label="unit")
        assert payload["schema"] == "prord-bench-experiments/v2"
        assert payload["label"] == "unit"
        assert payload["total_wall_clock_s"] > 0
        assert len(payload["cells"]) == 2
        for cell, spec in zip(payload["cells"], GRID[:2]):
            assert cell["workload"] == spec.workload
            assert cell["policy"] == spec.policy
            assert cell["wall_clock_s"] > 0
            assert cell["throughput_rps"] > 0
            assert 0 <= cell["hit_rate"] <= 1
            assert cell["completed"] > 0
            assert cell["p95_response_ms"] >= 0
            assert cell["load_imbalance"] >= 1.0
            # phase_timings is populated only for telemetered grids.
            assert cell["phase_timings"] is None

    def test_write_bench_json(self, tmp_path):
        import json

        results = run_grid(GRID[:1], MICRO, jobs=0)
        path = write_bench_json(results, tmp_path / "sub" / "bench.json",
                                label="unit")
        data = json.loads(path.read_text())
        assert data["schema"] == "prord-bench-experiments/v2"
        assert len(data["cells"]) == 1
