#!/usr/bin/env python3
"""Flash-crowd scenario: the WorldCup'98-style trace.

The WorldCup workload is what stresses popularity-based replication:
a small file set (≈3,800 files) with extreme Zipf skew — a handful of
score pages take most of the traffic.  Algorithm 3 replicates those
pages across every backend, so no single backend becomes the hot-page
bottleneck.

This example runs PRORD with and without the replication engine to show
its contribution, and prints the replication tiers in action.

Run:  python examples/worldcup.py
"""

from repro.core import SimulationParams, mine_components
from repro.core.system import build_policy
from repro.experiments import QUICK, loaded_workload
from repro.mining import PopularityTracker
from repro.policies import ReplicationEngine
from repro.sim import ClusterSimulator


def main() -> None:
    workload = loaded_workload("worldcup", QUICK)
    print(workload.summary())

    params = SimulationParams(
        n_backends=8,
        cache_bytes=int(0.3 * workload.site_bytes / 8),
        replication_interval_s=2.0,
    )
    mining = mine_components(workload, params)

    # Show the offline popularity ranking the replicator is seeded with.
    print("\nhottest files in the training log:")
    for path, count in mining.rank_table.top(5):
        print(f"  {count:6d} hits  {path}")

    for label, with_replication in (("PRORD without replication", False),
                                    ("PRORD with replication", True)):
        policy, _ = build_policy("prord", mining, params)
        replicator = None
        if with_replication:
            replicator = ReplicationEngine(
                PopularityTracker(mining.rank_table, half_life=30.0))
        # Fresh mining per run: the predictor carries per-run state.
        mining = mine_components(workload, params)
        cluster = ClusterSimulator(
            workload.trace, policy, params,
            replicator=replicator, window_s=QUICK.duration_s,
        )
        result = cluster.run()
        print(f"\n{label}:")
        print(f"  throughput {result.throughput_rps:7.0f} rps, "
              f"response {result.mean_response_s * 1e3:7.1f} ms, "
              f"hit {result.hit_rate:.1%}")
        print(f"  load imbalance {result.report.load_imbalance:.2f} "
              "(max/mean per-backend completions)")
        if replicator is not None:
            print(f"  {replicator.rounds} replication rounds pushed "
                  f"{replicator.replicas_pushed} replicas "
                  f"({replicator.bytes_pushed / 1024:.0f} KB)")
            hot = mining.rank_table.top(1)[0][0]
            holders = sum(1 for s in cluster.servers if s.cache.peek(hot))
            print(f"  hottest file {hot!r} resident on "
                  f"{holders}/{params.n_backends} backends")


if __name__ == "__main__":
    main()
